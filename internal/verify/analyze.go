package verify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// analyzeFn analyzes one function: CFG discovery, back-edge and
// natural-loop structure, the interval dataflow fixpoint, loop trip
// counting, and the access-classification post-pass. isEntry selects
// the environment's entry state (typed argument slot) over the opaque
// own-frame state used for internal call targets.
func (an *analysis) analyzeFn(entry int, isEntry bool) {
	if an.funcs[entry] != nil {
		return
	}
	f := &fn{
		entry: entry, nodes: map[int]bool{}, succ: map[int][]int{},
		pred: map[int][]int{}, backSet: map[edge]bool{},
		loops: map[int]*loopInfo{}, in: map[int]*state{},
		entryIn: map[int]*state{}, visits: map[int]int{},
	}
	an.funcs[entry] = f
	if entry < 0 || entry >= len(an.obj.Text) {
		return
	}

	// 1. Discover nodes and static edges.
	stack := []int{entry}
	f.nodes[entry] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sc := an.staticSucc(n, f)
		f.succ[n] = sc
		for _, s := range sc {
			f.pred[s] = append(f.pred[s], n)
			if !f.nodes[s] {
				f.nodes[s] = true
				stack = append(stack, s)
			}
		}
	}

	// 2. Back edges (iterative DFS, grey-target edges).
	color := map[int]int8{}
	type frame struct{ n, i int }
	var dfs []frame
	color[entry] = 1
	dfs = append(dfs, frame{entry, 0})
	for len(dfs) > 0 {
		fr := &dfs[len(dfs)-1]
		if fr.i < len(f.succ[fr.n]) {
			s := f.succ[fr.n][fr.i]
			fr.i++
			switch color[s] {
			case 0:
				color[s] = 1
				dfs = append(dfs, frame{s, 0})
			case 1:
				f.backSet[edge{fr.n, s}] = true
			}
		} else {
			color[fr.n] = 2
			dfs = dfs[:len(dfs)-1]
		}
	}

	// 3. Natural loops (merged per head) and their write sets, which
	// the dataflow havocs at the head instead of widening.
	for e := range f.backSet {
		li := f.loops[e.to]
		if li == nil {
			li = &loopInfo{body: map[int]bool{e.to: true}}
			f.loops[e.to] = li
		}
		li.latches = append(li.latches, e.from)
		work := []int{e.from}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			if li.body[n] {
				continue
			}
			li.body[n] = true
			work = append(work, f.pred[n]...)
		}
	}
	for _, li := range f.loops {
		for n := range li.body {
			w, cellsW := writeEffects(&an.obj.Text[n])
			for i := range w {
				li.written[i] = li.written[i] || w[i]
			}
			li.havocCells = li.havocCells || cellsW
		}
	}

	// 4. Dataflow fixpoint.
	f.in[entry] = an.entryState(isEntry)
	wl := []int{entry}
	for len(wl) > 0 {
		n := wl[0]
		wl = wl[1:]
		out := f.in[n].clone()
		an.step(n, out)
		for _, s := range f.succ[n] {
			if an.flowInto(f, n, s, out) {
				wl = append(wl, s)
			}
		}
	}

	// 5. Trip counts and the function's step bound, folded bottom-up
	// over the loop-nesting forest: an inner loop runs in full once
	// per iteration of every enclosing loop, so its bound multiplies
	// by each enclosing trip count instead of summing beside it.
	f.bounded = true
	var heads []int
	for h := range f.loops {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	trips := make(map[int]uint64, len(heads))
	for _, h := range heads {
		latches := append([]int(nil), f.loops[h].latches...)
		sort.Ints(latches)
		for _, l := range latches {
			t, ok := an.tripCount(f, edge{l, h})
			if !ok {
				f.bounded = false
				if an.lay.RequireBounded {
					an.violation(l, "loop bound not provable")
					an.latchViolated = true
				} else {
					an.unproven(l, "", "loop bound not provable; the runtime time limit applies")
				}
				continue
			}
			trips[h] = satAdd(trips[h], t)
		}
	}
	if f.bounded {
		if loopSteps, ok := nestSteps(f, heads, trips); ok {
			f.steps = satAdd(uint64(len(f.nodes)), loopSteps)
		} else {
			f.bounded = false
			if an.lay.RequireBounded {
				an.violation(f.entry, "loop nesting not reducible; bound not provable")
				an.latchViolated = true
			} else {
				an.unproven(f.entry, "", "loop nesting not reducible; the runtime time limit applies")
			}
		}
	}
	f.analyzed = true

	// 6. Classification over the final states.
	var nodes []int
	for n := range f.nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if st := f.in[n]; st != nil {
			an.classifyNode(n, st)
		}
	}
}

// flowInto joins an out-state into a successor, havocking the
// loop-written registers and cells at loop heads (the widening that
// makes the fixpoint converge) while recording the pre-havoc join of
// outside edges for trip counting. Reports whether the successor's
// state changed.
func (an *analysis) flowInto(f *fn, from, to int, s *state) bool {
	if li := f.loops[to]; li != nil {
		if !f.backSet[edge{from, to}] {
			f.entryIn[to] = joinState(f.entryIn[to], s)
		}
		h := s.clone()
		for i, w := range li.written {
			if w {
				h.regs[i] = top
			}
		}
		if li.havocCells {
			havocCells(h)
		}
		s = h
	}
	old := f.in[to]
	nw := joinState(old, s)
	if old != nil && nw.eq(old) {
		return false
	}
	f.visits[to]++
	if f.visits[to] > visitCap {
		nw = topState()
	}
	f.in[to] = nw
	return true
}

// writeEffects reports which registers an instruction may write and
// whether it may write memory that could alias tracked stack cells.
func writeEffects(ins *isa.Instr) (w [8]bool, cells bool) {
	markDst := func() {
		switch ins.Dst.Kind {
		case isa.KindReg:
			w[ins.Dst.Reg] = true
		case isa.KindMem:
			cells = true
		}
	}
	switch ins.Op {
	case isa.MOV, isa.LEA, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR, isa.IMUL, isa.INC, isa.DEC, isa.NEG, isa.NOT:
		markDst()
	case isa.XCHG:
		markDst()
		switch ins.Src.Kind {
		case isa.KindReg:
			w[ins.Src.Reg] = true
		case isa.KindMem:
			cells = true
		}
	case isa.PUSH:
		w[isa.ESP] = true
		cells = true
	case isa.POP:
		markDst()
		w[isa.ESP] = true
		cells = true
	case isa.CALL, isa.LCALL, isa.INT:
		for i := range w {
			w[i] = true
		}
		w[isa.ESP] = false
		cells = true
	}
	return w, cells
}

// step is the abstract transfer function for one instruction.
func (an *analysis) step(idx int, st *state) {
	ins := &an.obj.Text[idx]
	rel := an.rel[idx]
	size := ins.Size
	switch ins.Op {
	case isa.MOV:
		v := an.readOpVal(&ins.Src, rel.srcImm, rel.srcDisp, size, st)
		an.writeOp(&ins.Dst, rel.dstDisp, v, size, st)
	case isa.LEA:
		if ins.Dst.Kind == isa.KindReg {
			full, _, _ := an.effAddr(&ins.Src, rel.srcDisp, st)
			st.regs[ins.Dst.Reg] = full
		}
	case isa.PUSH:
		v := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, 4, st)
		if d, ok := espDelta(st); ok {
			st.regs[isa.ESP] = aval{rStack, d - 4, d - 4}
			st.cells[d-4] = v
		} else {
			st.regs[isa.ESP] = subAv(st.regs[isa.ESP], cst(4))
			havocCells(st)
		}
	case isa.POP:
		v := top
		if d, ok := espDelta(st); ok {
			if cv, ok2 := st.cells[d]; ok2 {
				v = cv
			}
			st.regs[isa.ESP] = aval{rStack, d + 4, d + 4}
		} else {
			st.regs[isa.ESP] = addAv(st.regs[isa.ESP], cst(4))
		}
		an.writeOp(&ins.Dst, rel.dstDisp, v, 4, st)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.IMUL:
		a := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, size, st)
		b := an.readOpVal(&ins.Src, rel.srcImm, rel.srcDisp, size, st)
		an.writeOp(&ins.Dst, rel.dstDisp, aluVal(ins, a, b), size, st)
	case isa.INC:
		v := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, size, st)
		an.writeOp(&ins.Dst, rel.dstDisp, addAv(v, cst(1)), size, st)
	case isa.DEC:
		v := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, size, st)
		an.writeOp(&ins.Dst, rel.dstDisp, subAv(v, cst(1)), size, st)
	case isa.NEG, isa.NOT:
		v := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, size, st)
		if x, ok := v.exact(); ok {
			if ins.Op == isa.NEG {
				v = cst(-x)
			} else {
				v = cst(^x)
			}
		} else {
			v = top
		}
		an.writeOp(&ins.Dst, rel.dstDisp, v, size, st)
	case isa.XCHG:
		a := an.readOpVal(&ins.Dst, rel.dstImm, rel.dstDisp, size, st)
		b := an.readOpVal(&ins.Src, rel.srcImm, rel.srcDisp, size, st)
		an.writeOp(&ins.Dst, rel.dstDisp, b, size, st)
		an.writeOp(&ins.Src, rel.srcDisp, a, size, st)
	case isa.CALL, isa.LCALL, isa.INT:
		// A transfer into trusted host code (PLT, service gate) or a
		// separately-analyzed internal function: everything but the
		// convention-preserved stack pointer becomes unknown.
		havocCall(st)
	}
}

// aluVal computes the two-operand ALU transfer.
func aluVal(ins *isa.Instr, a, b aval) aval {
	switch ins.Op {
	case isa.ADD:
		return addAv(a, b)
	case isa.SUB:
		return subAv(a, b)
	case isa.AND:
		return andAv(a, b)
	case isa.OR:
		return orAv(a, b)
	case isa.XOR:
		if ins.Dst.Kind == isa.KindReg && ins.Src.Kind == isa.KindReg && ins.Dst.Reg == ins.Src.Reg {
			return cst(0) // the idiomatic zeroing
		}
		if av, ok := a.exact(); ok {
			if bv, ok2 := b.exact(); ok2 {
				return cst(av ^ bv)
			}
		}
		return top
	case isa.SHL:
		bv, bok := b.exact()
		if !bok {
			return top
		}
		c := bv & 31
		if av, ok := a.exact(); ok {
			return cst(av << c)
		}
		if a.r == rConst && a.lo >= 0 && a.hi <= int64(0xFFFF_FFFF)>>c {
			return aval{rConst, a.lo << c, a.hi << c}
		}
		return top
	case isa.SHR:
		bv, bok := b.exact()
		if !bok || a.r != rConst || a.lo < 0 {
			return top
		}
		c := bv & 31
		return aval{rConst, a.lo >> c, a.hi >> c}
	case isa.SAR:
		av, aok := a.exact()
		bv, bok := b.exact()
		if aok && bok {
			return cst(uint32(int32(av) >> (bv & 31)))
		}
		return top
	case isa.IMUL:
		if bv, ok := b.exact(); ok {
			return mulConst(a, int64(bv))
		}
		if av, ok := a.exact(); ok {
			return mulConst(b, int64(av))
		}
		return top
	}
	return top
}

// tripCount recognizes the counted-loop shape: a constant counter
// initialization outside the loop, a single `dec r` immediately
// before the `jne head` latch, and no other writer of r inside the
// loop. The entry constant is then an iteration upper bound.
func (an *analysis) tripCount(f *fn, e edge) (uint64, bool) {
	u, h := e.from, e.to
	ins := &an.obj.Text[u]
	if ins.Op != isa.JNE {
		return 0, false
	}
	if t, _, ok := an.brTargetIdx(u); !ok || t != h {
		return 0, false
	}
	li := f.loops[h]
	if u-1 < 0 || !li.body[u-1] {
		return 0, false
	}
	prev := &an.obj.Text[u-1]
	if prev.Op != isa.DEC || prev.Dst.Kind != isa.KindReg {
		return 0, false
	}
	r := prev.Dst.Reg
	for n := range li.body {
		if n == u-1 {
			continue
		}
		w, _ := writeEffects(&an.obj.Text[n])
		if w[r] {
			return 0, false
		}
	}
	ev := f.entryIn[h]
	if ev == nil {
		return 0, false
	}
	n, ok := ev.regs[r].exact()
	if !ok || n == 0 {
		return 0, false
	}
	return uint64(n), true
}

// nestSteps folds the per-loop trip bounds into one step bound over
// the loop-nesting forest: steps(L) = trips(L) * (L's own body nodes
// + the settled bounds of its immediate inner loops). Loops nest
// properly when, for every pair with overlapping bodies, one body
// contains the other; irreducible overlap (or mutual head
// containment) refuses the bound rather than undercounting it.
func nestSteps(f *fn, heads []int, trips map[int]uint64) (uint64, bool) {
	for i, h := range heads {
		for _, g := range heads[i+1:] {
			hb, gb := f.loops[h].body, f.loops[g].body
			switch {
			case hb[g] && gb[h]:
				return 0, false
			case hb[g]:
				if !subsetOf(gb, hb) {
					return 0, false
				}
			case gb[h]:
				if !subsetOf(hb, gb) {
					return 0, false
				}
			default:
				for n := range hb {
					if gb[n] {
						return 0, false
					}
				}
			}
		}
	}
	// parent: the innermost (smallest-body) distinct loop containing
	// the head; -1 for top-level loops.
	parent := make(map[int]int, len(heads))
	for _, h := range heads {
		parent[h] = -1
		for _, g := range heads {
			if g == h || !f.loops[g].body[h] {
				continue
			}
			if p := parent[h]; p == -1 || len(f.loops[g].body) < len(f.loops[p].body) {
				parent[h] = g
			}
		}
	}
	// Smallest bodies first settles every child before its parent.
	order := append([]int(nil), heads...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(f.loops[a].body) != len(f.loops[b].body) {
			return len(f.loops[a].body) < len(f.loops[b].body)
		}
		return a < b
	})
	inner := map[int]uint64{}   // settled bounds of immediate children
	childNodes := map[int]int{} // body nodes owned by immediate children
	var total uint64
	for _, h := range order {
		own := uint64(len(f.loops[h].body) - childNodes[h])
		s := satMul(trips[h], satAdd(own, inner[h]))
		if p := parent[h]; p != -1 {
			inner[p] = satAdd(inner[p], s)
			childNodes[p] += len(f.loops[h].body)
		} else {
			total = satAdd(total, s)
		}
	}
	return total, true
}

func subsetOf(a, b map[int]bool) bool {
	for n := range a {
		if !b[n] {
			return false
		}
	}
	return true
}

// satAdd and satMul saturate at MaxUint64: a huge proven bound must
// overshoot the budget check, never wrap back under it.
func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a != 0 && b > math.MaxUint64/a {
		return math.MaxUint64
	}
	return a * b
}

// ------------------------------------------------- classification

const (
	vOK = iota
	vPart
	vOut
)

// stackVerdict classifies a stack-relative byte range [lo, hi+size-1]
// against the layout's window: writable below the entry pointer,
// readable up to StackAbove at/above it.
func (an *analysis) stackVerdict(lo, hi, size int64, acc Perm) int {
	loB, hiB := lo, hi+size-1
	below, above := -int64(an.lay.StackBelow), int64(an.lay.StackAbove)
	okHi := int64(-1)
	if acc&PermW == 0 {
		okHi = above - 1
	}
	if loB >= below && hiB <= okHi {
		return vOK
	}
	if hiB < below || loB >= above {
		return vOut
	}
	return vPart
}

type memAcc struct {
	dst  bool
	perm Perm
	size int64
	elig bool
}

// eligOp whitelists the operand shapes whose translated closures read
// and write through per-operand SegProbes (the elision point); stack
// and transfer traffic goes through the machine-level paths instead.
func eligOp(op isa.Op) bool {
	switch op {
	case isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST,
		isa.SHL, isa.SHR, isa.SAR, isa.IMUL, isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.XCHG:
		return true
	}
	return false
}

// accessesOf enumerates an instruction's explicit memory accesses.
func accessesOf(ins *isa.Instr) []memAcc {
	var out []memAcc
	size := int64(4)
	if ins.Size == 1 {
		size = 1
	}
	if ins.Src.Kind == isa.KindMem && ins.Op != isa.LEA {
		perm := PermR
		if ins.Op == isa.XCHG {
			perm = PermRW
		}
		out = append(out, memAcc{dst: false, perm: perm, size: size, elig: eligOp(ins.Op)})
	}
	if ins.Dst.Kind == isa.KindMem {
		switch ins.Op {
		case isa.MOV:
			out = append(out, memAcc{dst: true, perm: PermW, size: size, elig: true})
		case isa.CMP, isa.TEST:
			out = append(out, memAcc{dst: true, perm: PermR, size: size, elig: true})
		case isa.PUSH:
			out = append(out, memAcc{dst: true, perm: PermR, size: 4})
		case isa.POP:
			out = append(out, memAcc{dst: true, perm: PermW, size: 4})
		case isa.JMP, isa.CALL:
			out = append(out, memAcc{dst: true, perm: PermR, size: 4})
		case isa.LEA:
		default:
			out = append(out, memAcc{dst: true, perm: PermRW, size: size, elig: eligOp(ins.Op)})
		}
	}
	return out
}

func accVerb(p Perm) string {
	switch p {
	case PermW:
		return "write"
	case PermR:
		return "read"
	}
	return "access"
}

func (an *analysis) prove(site string) { an.proven[site] = true }

func (an *analysis) demote(site string, idx int, rng, format string, args ...any) {
	an.demoted[site] = true
	an.unproven(idx, rng, format, args...)
}

func (an *analysis) fact(idx int, dst bool, end uint32) {
	k := factKey{idx, dst}
	if fs, ok := an.facts[k]; ok {
		if !fs.dead && end > fs.end {
			fs.end = end
			an.facts[k] = fs
		}
		return
	}
	an.facts[k] = factState{end: end}
}

// factKill permanently blocks the elidable fact at a site. The site
// can stay proven: some analysis context (an instruction may belong to
// several analyzed functions) discharged it through a bound that is
// not in the operand-local displacement domain — stack- or argument-
// relative, or an unanchored data pointer — so an end bound recorded
// by another context would not cover every runtime effective address,
// which the isa.Operand.ProvedEnd contract requires.
func (an *analysis) factKill(idx int, dst bool) {
	k := factKey{idx, dst}
	fs := an.facts[k]
	fs.dead = true
	an.facts[k] = fs
}

// classifyNode classifies every access and control effect of one
// instruction under its final abstract in-state.
func (an *analysis) classifyNode(idx int, st *state) {
	ins := &an.obj.Text[idx]
	rel := an.rel[idx]
	for _, acc := range accessesOf(ins) {
		op, r := &ins.Src, rel.srcDisp
		if acc.dst {
			op, r = &ins.Dst, rel.dstDisp
		}
		an.checkAccess(idx, op, acc, r, st)
	}
	switch {
	case ins.Op == isa.JMP && ins.Dst.Kind != isa.KindImm:
		an.indirectTransfer(idx, "jump", &ins.Dst, rel.dstDisp, st)
	case ins.Op == isa.CALL && ins.Dst.Kind != isa.KindImm:
		an.indirectTransfer(idx, "call", &ins.Dst, rel.dstDisp, st)
	case ins.Op == isa.PUSH:
		an.implicitStack(idx, st, -4, PermW, "push")
	case ins.Op == isa.POP:
		an.implicitStack(idx, st, 0, PermR, "pop")
	case ins.Op == isa.CALL:
		an.implicitStack(idx, st, -4, PermW, "call")
	case ins.Op == isa.RET:
		an.implicitStack(idx, st, 0, PermR, "ret")
		if d, ok := espDelta(st); ok {
			if d != 0 {
				an.unproven(idx, "", "return with unbalanced stack (esp = entry%+d)", d)
			}
		} else {
			an.unproven(idx, "", "return with unproved stack balance")
		}
	}
}

// implicitStack classifies the 4-byte stack slot an instruction
// implicitly touches at esp+off.
func (an *analysis) implicitStack(idx int, st *state, off int64, acc Perm, tag string) {
	d, ok := espDelta(st)
	if !ok {
		an.unproven(idx, "", "%s with unproved stack pointer", tag)
		return
	}
	site := fmt.Sprintf("%d|%s", idx, tag)
	lo := d + off
	rng := rangeString(rStack, lo, lo+3)
	switch an.stackVerdict(lo, lo, 4, acc) {
	case vOK:
		an.prove(site)
	case vOut:
		an.violationRange(idx, rng, "stack-relative %s outside the extension stack", accVerb(acc))
	default:
		an.demote(site, idx, rng, "stack-relative %s not provably within the stack window", accVerb(acc))
	}
}

// indirectTransfer rejects computed jumps and calls: verified control
// flow must stay on relocated text targets (or leave through the
// published gates), so a register- or memory-carried target is a
// policy violation whatever it holds.
func (an *analysis) indirectTransfer(idx int, kind string, op *isa.Operand, disp *isa.Reloc, st *state) {
	var v aval
	if op.Kind == isa.KindReg {
		v = st.regs[op.Reg]
	} else {
		v = an.readOpVal(op, nil, disp, 4, st)
	}
	switch v.r {
	case rConst, rData, rStack, rArg:
		an.violationRange(idx, rangeString(v.r, v.lo, v.hi), "indirect %s outside module text", kind)
	case rText:
		an.violationRange(idx, rangeString(v.r, v.lo, v.hi), "indirect %s into module text is not verifiable", kind)
	default:
		an.violationRange(idx, "", "indirect %s target unresolvable", kind)
	}
}

// checkAccess classifies one explicit memory access and records the
// elision fact when the bound is operand-local (anchored by the
// operand's own relocation or by proven absolute constants).
func (an *analysis) checkAccess(idx int, op *isa.Operand, acc memAcc, r *isa.Reloc, st *state) {
	full, regPart, anchored := an.effAddr(op, r, st)
	site := fmt.Sprintf("%d|%v", idx, acc.dst)
	verb := accVerb(acc.perm)
	loB, hiB := full.lo, full.hi+acc.size-1
	rng := rangeString(full.r, loB, hiB)
	switch full.r {
	case rTop:
		an.demote(site, idx, "", "%s through unresolved address", verb)
	case rConst:
		overlap := false
		for i := range an.lay.Regions {
			rg := &an.lay.Regions[i]
			rLo, rHi := int64(rg.Lo), int64(rg.Hi)
			if loB >= rLo && hiB <= rHi && acc.perm&^rg.Perm == 0 {
				an.prove(site)
				if acc.elig {
					an.fact(idx, acc.dst, uint32(hiB))
				}
				return
			}
			if hiB >= rLo && loB <= rHi {
				overlap = true
			}
		}
		if overlap {
			an.demote(site, idx, rng, "absolute %s not provably within a permitting region", verb)
		} else {
			an.violationRange(idx, rng, "absolute %s outside the declared regions", verb)
		}
	case rData:
		switch {
		case loB >= 0 && hiB < an.dataSize:
			an.prove(site)
			if acc.elig {
				if anchored && regPart.r == rConst {
					an.fact(idx, acc.dst, uint32(int64(op.Disp)+regPart.hi+acc.size-1))
				} else {
					an.factKill(idx, acc.dst)
				}
			}
		case hiB < 0 || loB >= an.dataSize:
			an.violationRange(idx, rng, "module data %s out of bounds", verb)
		default:
			an.demote(site, idx, rng, "module data %s not provably in bounds", verb)
		}
	case rText:
		if acc.perm&PermW != 0 {
			an.violationRange(idx, rng, "store into module text")
		} else {
			an.demote(site, idx, rng, "read from module text left to the runtime")
		}
	case rStack:
		switch an.stackVerdict(full.lo, full.hi, acc.size, acc.perm) {
		case vOK:
			// Stack facts stay symbolic: never elidable — and any
			// absolute fact another context recorded for this operand
			// must die with them.
			an.prove(site)
			if acc.elig {
				an.factKill(idx, acc.dst)
			}
		case vOut:
			an.violationRange(idx, rng, "stack-relative %s outside the extension stack", verb)
		default:
			an.demote(site, idx, rng, "stack-relative %s not provably within the stack window", verb)
		}
	case rArg:
		a := an.lay.Arg
		if a.Pointer && acc.perm&^a.Perm == 0 && loB >= 0 && hiB < int64(a.Size) {
			an.prove(site)
			if acc.elig {
				an.factKill(idx, acc.dst)
			}
		} else {
			an.demote(site, idx, rng, "argument-relative %s not provably within the declared argument area", verb)
		}
	}
}

// ------------------------------------------------- aggregation

// fnTotal sums a function's proven step bound over its call graph;
// recursion or any unbounded callee forfeits the bound.
func (an *analysis) fnTotal(e int, seen map[int]int8) (uint64, bool) {
	if seen[e] == 1 {
		return 0, false // recursion
	}
	f := an.funcs[e]
	if f == nil || !f.bounded {
		return 0, false
	}
	seen[e] = 1
	total := f.steps
	ok := true
	for _, c := range f.callees {
		cs, cok := an.fnTotal(c, seen)
		if !cok {
			ok = false
			break
		}
		total = satAdd(total, cs)
	}
	seen[e] = 0
	return total, ok
}

// finish settles the census, the termination verdict and the status.
func (an *analysis) finish(entries []int) {
	rep := an.rep
	for k, fs := range an.facts {
		if fs.dead || an.demoted[fmt.Sprintf("%d|%v", k.idx, k.dst)] {
			delete(an.facts, k)
		}
	}
	proven := 0
	for s := range an.proven {
		if !an.demoted[s] {
			proven++
		}
	}
	rep.Proven = proven
	rep.Elidable = len(an.facts)
	rep.facts = make(map[factKey]uint32, len(an.facts))
	for k, fs := range an.facts {
		rep.facts[k] = fs.end
	}

	bounded := len(entries) > 0
	var maxSteps uint64
	for _, e := range entries {
		steps, ok := an.fnTotal(e, map[int]int8{})
		if !ok {
			bounded = false
			continue
		}
		if steps > maxSteps {
			maxSteps = steps
		}
	}
	if !bounded && an.lay.RequireBounded && !an.latchViolated && len(entries) > 0 {
		an.violation(entries[0], "termination not provable")
	}
	budget := an.lay.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	if bounded && maxSteps > budget {
		an.violation(entries[0], "proved step bound %d exceeds the layout budget %d", maxSteps, budget)
	}
	rep.Bounded = bounded
	if bounded {
		rep.MaxSteps = maxSteps
	}

	sortFindings(rep.Violations)
	sortFindings(rep.Unproven)
	switch {
	case len(rep.Violations) > 0:
		rep.Status = Rejected
	case len(rep.Unproven) > 0 || !rep.Bounded:
		rep.Status = Guarded
	default:
		rep.Status = Clean
	}
}
