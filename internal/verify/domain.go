package verify

import "fmt"

// region tags an abstract value with the address space it points
// into. The domain is a reduced product of a base region and an
// offset interval: "data+[0,255]" is any address between the module
// data base and data base + 255.
type region uint8

const (
	// rConst: a plain number (an absolute address when dereferenced),
	// interval canonical in [0, 2^32).
	rConst region = iota
	// rData: module data+bss base plus the interval.
	rData
	// rText: module text base plus the interval.
	rText
	// rStack: entry stack pointer plus the (signed) interval.
	rStack
	// rArg: the entry argument pointer plus the interval.
	rArg
	// rTop: unknown.
	rTop
)

func (r region) String() string {
	switch r {
	case rConst:
		return "abs"
	case rData:
		return "data"
	case rText:
		return "text"
	case rStack:
		return "stack"
	case rArg:
		return "arg"
	}
	return "top"
}

// aval is one abstract value: a region plus an inclusive offset
// interval. The interval is meaningless for rTop.
type aval struct {
	r      region
	lo, hi int64
}

var top = aval{r: rTop}

func cst(v uint32) aval { return aval{rConst, int64(v), int64(v)} }

func (a aval) isTop() bool { return a.r == rTop }

// exact reports a single-point constant and its value.
func (a aval) exact() (uint32, bool) {
	if a.r == rConst && a.lo == a.hi {
		return uint32(a.lo), true
	}
	return 0, false
}

func (a aval) String() string {
	if a.r == rTop {
		return "top"
	}
	if a.lo == a.hi {
		return fmt.Sprintf("%s+%#x", a.r, uint64(uint32(a.lo)))
	}
	return fmt.Sprintf("%s+[%#x,%#x]", a.r, a.lo, a.hi)
}

// rangeString renders an access interval [lo, hi] (inclusive byte
// ends) for findings.
func rangeString(r region, lo, hi int64) string {
	if r == rTop {
		return ""
	}
	if r == rConst {
		return fmt.Sprintf("abs[%#x,%#x]", lo, hi)
	}
	return fmt.Sprintf("%s[%d,%d]", r, lo, hi)
}

// norm canonicalizes an rConst value into [0, 2^32): exact values
// wrap like the 32-bit machine; inexact intervals that leave the
// range lose all precision (the runtime wrap could land anywhere).
// Region offsets are left alone — bounds checks interpret them.
func norm(a aval) aval {
	if a.r != rConst {
		return a
	}
	if a.lo == a.hi {
		return cst(uint32(a.lo))
	}
	if a.lo < 0 || a.hi > 0xFFFF_FFFF {
		return top
	}
	return a
}

// join is the lattice join: same-region intervals widen, mismatched
// regions lose to top.
func join(a, b aval) aval {
	if a.isTop() || b.isTop() || a.r != b.r {
		return top
	}
	return aval{a.r, min(a.lo, b.lo), max(a.hi, b.hi)}
}

// addAv adds two abstract values: a constant shifts a region's
// interval; two regions (or any top) lose to top.
func addAv(a, b aval) aval {
	switch {
	case a.isTop() || b.isTop():
		return top
	case a.r == rConst && b.r == rConst:
		return norm(aval{rConst, a.lo + b.lo, a.hi + b.hi})
	case a.r == rConst:
		return aval{b.r, b.lo + a.lo, b.hi + a.hi}
	case b.r == rConst:
		return aval{a.r, a.lo + b.lo, a.hi + b.hi}
	}
	return top
}

// subAv subtracts: region minus constant shifts; same-region
// difference collapses to a plain number (a length).
func subAv(a, b aval) aval {
	switch {
	case a.isTop() || b.isTop():
		return top
	case a.r == rConst && b.r == rConst:
		return norm(aval{rConst, a.lo - b.hi, a.hi - b.lo})
	case b.r == rConst:
		return aval{a.r, a.lo - b.hi, a.hi - b.lo}
	case a.r == b.r:
		return norm(aval{rConst, a.lo - b.hi, a.hi - b.lo})
	}
	return top
}

// mulConst multiplies an abstract value by a small non-negative
// constant (index scaling, imul by immediate).
func mulConst(a aval, c int64) aval {
	if a.isTop() || a.r != rConst || c < 0 {
		if c == 1 {
			return a
		}
		return top
	}
	return norm(aval{rConst, a.lo * c, a.hi * c})
}

// onesCover returns the smallest 2^k-1 >= v, the tightest all-ones
// upper bound for OR reasoning.
func onesCover(v int64) int64 {
	c := int64(1)
	for c-1 < v {
		c <<= 1
	}
	return c - 1
}

// andAv models dst &= src. Masking a pointer yields a plain number.
func andAv(a, b aval) aval {
	av, aok := a.exact()
	bv, bok := b.exact()
	if aok && bok {
		return cst(av & bv)
	}
	// x & mask <= mask, and <= x when x is a known plain interval.
	if bok {
		hi := int64(bv)
		if a.r == rConst && a.hi < hi {
			hi = a.hi
		}
		return aval{rConst, 0, hi}
	}
	if aok {
		hi := int64(av)
		if b.r == rConst && b.hi < hi {
			hi = b.hi
		}
		return aval{rConst, 0, hi}
	}
	return top
}

// orAv models dst |= src: c|x >= c and c|x <= c | onesCover(hi(x)) —
// exactly the reasoning the SFI mask-and-rebase sequence needs
// ("and edi, size-1; or edi, base" proves base <= edi < base+size
// for power-of-two sizes).
func orAv(a, b aval) aval {
	av, aok := a.exact()
	bv, bok := b.exact()
	if aok && bok {
		return cst(av | bv)
	}
	if bok && a.r == rConst && a.lo >= 0 {
		return norm(aval{rConst, max(a.lo, int64(bv)), int64(bv) | onesCover(a.hi)})
	}
	if aok && b.r == rConst && b.lo >= 0 {
		return norm(aval{rConst, max(b.lo, int64(av)), int64(av) | onesCover(b.hi)})
	}
	return top
}
