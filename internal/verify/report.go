// Package verify is a load-time static verifier for guest extension
// objects: an abstract interpretation over the simulated ISA that
// builds a control-flow graph from the decoded instructions, proves a
// termination budget for counted loops, and runs a region+interval
// analysis over registers and effective addresses to classify every
// memory access against a declared segment layout.
//
// The verifier is the zero-per-access-tax pole of the paper's design
// space: where Palladium pushes protection onto segment and page
// checks the hardware performs on every access, the verifier charges
// everything once at load time. The two compose rather than compete —
// a verdict is three-valued:
//
//	Clean    every access proven in-bounds and termination bounded;
//	         the program cannot fault and tier 2 may elide the
//	         SegProbe limit re-validation for proven operands.
//	Guarded  no provable violation, but some accesses (or loops)
//	         could not be discharged statically; the program loads
//	         and the ordinary hardware checks + time limits carry
//	         the protection burden — the paper's own hybrid story.
//	Rejected a definite policy violation (an absolute access outside
//	         every declared region, a forged far transfer, an
//	         unresolvable indirect jump); the object never runs.
//
// Facts proved for individual operands are exported by annotating the
// object (isa.Operand.Proved/ProvedEnd) so the tier-2 translator can
// skip the segment-limit re-validation on warm probes; see
// mmu.TranslateVerified for the refill-time re-attestation that keeps
// elision sound against descriptor mutation.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Status is the verifier's three-valued verdict.
type Status int

const (
	// Clean: every memory access proven in-bounds, termination
	// bounded within the layout's budget. Clean programs cannot
	// fault; the soundness fuzz holds them to that claim.
	Clean Status = iota
	// Guarded: accepted, but some accesses or loops rely on the
	// runtime checks (segment limits, page privilege, time limits).
	Guarded
	// Rejected: a definite violation; the object must not be loaded.
	Rejected
)

func (s Status) String() string {
	switch s {
	case Clean:
		return "clean"
	case Guarded:
		return "guarded"
	case Rejected:
		return "rejected"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// MarshalJSON renders the status as its string form so BENCH_verify
// and matrix JSON stay readable.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Perm is an access-permission bitmask for declared regions.
type Perm uint8

const (
	// PermR permits reads.
	PermR Perm = 1 << iota
	// PermW permits writes.
	PermW
	// PermRW permits both.
	PermRW = PermR | PermW
)

func (p Perm) String() string {
	switch {
	case p&PermRW == PermRW:
		return "rw"
	case p&PermW != 0:
		return "w"
	case p&PermR != 0:
		return "r"
	}
	return "-"
}

// Region is one byte range of the extension's address space (linear
// addresses for user-level backends, segment offsets for kernel
// segments) that absolute/computed addresses may legitimately target.
type Region struct {
	Name string
	Lo   uint32 // first byte, inclusive
	Hi   uint32 // last byte, inclusive
	Perm Perm
}

// ArgSpec declares the meaning of the 4-byte argument word every
// extension receives at [esp+4].
type ArgSpec struct {
	// Pointer: the argument is a pointer to an extension-accessible
	// area of Size bytes (a staged shared area, a CGI environment
	// block). Dereferences through the argument are proved against
	// [0, Size) with Perm.
	Pointer bool
	Size    uint32
	Perm    Perm
}

// Layout declares the protection domain an object is verified
// against: which address ranges exist, what the argument means, how
// much stack the entry owns, and which service transfers the
// environment provides.
type Layout struct {
	// Backend names the environment ("palladium-kernel", ...) for
	// reports.
	Backend string
	// Regions are the absolute address ranges extension code may
	// target with computed (non-relocated) addresses.
	Regions []Region
	// Arg types the entry argument.
	Arg ArgSpec
	// StackBelow is how many bytes below the entry stack pointer the
	// extension may read and write (its own frame space).
	StackBelow uint32
	// StackAbove is how many bytes at/above the entry stack pointer
	// the extension may read (return address, argument slot).
	StackAbove uint32
	// StackAbs, valid when StackAbsKnown, is the absolute address (in
	// the Regions' address domain) of the entry stack pointer. Layouts
	// whose declared regions contain the stack window itself — the
	// kernel segment's scratch+stack area — must set it so the
	// analysis can detect absolute stores that alias tracked stack
	// slots. Layouts whose regions are disjoint from the stack leave
	// it unset.
	StackAbs      uint32
	StackAbsKnown bool
	// AllowedInts lists the software-interrupt vectors the
	// environment services (kernel service gate, syscall gate).
	AllowedInts []uint8
	// AllowExterns permits near calls/jumps to unresolved extern
	// symbols (the loader's PLT) and far calls through extern-reloc
	// gate symbols (published services).
	AllowExterns bool
	// Budget caps the provable step bound; 0 selects DefaultBudget.
	// Programs whose proven bound exceeds it are rejected.
	Budget uint64
	// RequireBounded rejects programs whose termination cannot be
	// proven (instead of accepting them as Guarded under the runtime
	// time limit).
	RequireBounded bool
}

// DefaultBudget is the step budget applied when Layout.Budget is 0,
// comfortably under the mechanisms' 10M-instruction runtime limits.
const DefaultBudget = 1 << 20

// intAllowed reports whether the layout services vector v.
func (l *Layout) intAllowed(v uint8) bool {
	for _, a := range l.AllowedInts {
		if a == v {
			return true
		}
	}
	return false
}

// Finding is one classified fact about an instruction: a definite
// violation (Rejected), or an access/loop the verifier could not
// discharge (Guarded).
type Finding struct {
	// Index is the instruction's slot in Object.Text.
	Index int `json:"index"`
	// Instr is its disassembly.
	Instr string `json:"instr"`
	// Reason states the violation or the undischarged obligation.
	Reason string `json:"reason"`
	// Range is the inferred effective-address interval, when one was
	// inferred ("data+[0,255]", "abs[0x1000,0x1003]", "stack[-8,-5]").
	Range string `json:"range,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("#%d %s: %s", f.Index, f.Instr, f.Reason)
	if f.Range != "" {
		s += " (" + f.Range + ")"
	}
	return s
}

// Report is the verifier's structured result: the verdict, every
// violation or undischarged obligation, the access census, and the
// operand facts that back tier-2 check elision.
type Report struct {
	// Object names the verified object; Backend echoes the layout.
	Object  string `json:"object"`
	Backend string `json:"backend,omitempty"`
	// Status is the three-valued verdict.
	Status Status `json:"status"`
	// Entries lists the global text symbols analyzed as entry points.
	Entries []string `json:"entries"`
	// Violations are the definite rejections (nonempty iff Rejected).
	Violations []Finding `json:"violations,omitempty"`
	// Unproven are the obligations left to the runtime checks
	// (nonempty for Guarded programs).
	Unproven []Finding `json:"unproven,omitempty"`
	// Proven counts memory accesses proved in-bounds; Elidable counts
	// the subset whose segment-limit probe re-validation tier 2 may
	// skip (operand-anchored facts).
	Proven   int `json:"proven_accesses"`
	Elidable int `json:"elidable_accesses"`
	// Bounded reports a proven termination bound; MaxSteps is that
	// bound (0 when unbounded).
	Bounded  bool   `json:"bounded"`
	MaxSteps uint64 `json:"max_steps,omitempty"`

	// facts maps (instruction index, operand) to the proved inclusive
	// end bound, in the pre-relocation displacement domain.
	facts map[factKey]uint32
}

type factKey struct {
	idx int
	dst bool
}

// Accepted reports whether the object may load (Clean or Guarded).
func (r *Report) Accepted() bool { return r.Status != Rejected }

// Err returns nil when the object is accepted, and an error carrying
// the first violation otherwise.
func (r *Report) Err() error {
	if r.Status != Rejected {
		return nil
	}
	n := len(r.Violations)
	if n == 0 {
		return fmt.Errorf("verify: %s rejected", r.Object)
	}
	extra := ""
	if n > 1 {
		extra = fmt.Sprintf(" (+%d more)", n-1)
	}
	return fmt.Errorf("verify: %s rejected: %s%s", r.Object, r.Violations[0], extra)
}

// Annotate writes the report's proved operand facts into obj (which
// must be the object Check analyzed, or an identical clone): the
// loader shifts each fact's bound along with the displacement it
// anchors, and the tier-2 translator elides the probe limit
// re-validation for annotated operands. Annotating an object that is
// then loaded under a *different* layout would be unsound; adapters
// therefore verify and annotate a private clone per load.
func (r *Report) Annotate(obj *isa.Object) {
	for k, end := range r.facts {
		if k.idx < 0 || k.idx >= len(obj.Text) {
			continue
		}
		op := &obj.Text[k.idx].Src
		if k.dst {
			op = &obj.Text[k.idx].Dst
		}
		op.Proved = true
		op.ProvedEnd = end
	}
}

// sortFindings orders findings for deterministic reports.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Index != fs[j].Index {
			return fs[i].Index < fs[j].Index
		}
		return fs[i].Reason < fs[j].Reason
	})
}
