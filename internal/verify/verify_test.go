package verify

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
)

// userLayout mirrors the palladium-user adapter's layout: no absolute
// regions (everything the extension owns arrives via relocated
// symbols), 16 stack pages below the entry pointer, the syscall
// vector, and PLT externs.
func userLayout() Layout {
	return Layout{
		Backend:      "palladium-user",
		StackBelow:   16*4096 - 8,
		StackAbove:   8,
		AllowedInts:  []uint8{0x80},
		AllowExterns: true,
	}
}

// kernelLayout mirrors the palladium-kernel adapter: the segment's
// scratch+stack pages are one absolute RW region, the service gate
// vector is provided, and externs resolve to published services.
func kernelLayout() Layout {
	return Layout{
		Backend:    "palladium-kernel",
		Regions:    []Region{{Name: "scratch+stack", Lo: 0, Hi: 0x5000 - 1, Perm: PermRW}},
		StackBelow: 0x3FF8,
		StackAbove: 8,
		// The region contains the stack: entry ESP is absolute 0x4FF8
		// and the stack window spans [0x1000, 0x5000).
		StackAbs:      0x5000 - 8,
		StackAbsKnown: true,
		AllowedInts:   []uint8{0x81},
		AllowExterns:  true,
	}
}

func mustCheck(t *testing.T, name, src string, lay Layout) *Report {
	t.Helper()
	obj := isa.MustAssemble(name, src)
	return Check(obj, lay)
}

// reportLine flattens a finding for pinning.
func reportLine(f Finding) string {
	s := fmt.Sprintf("#%d %s", f.Index, f.Reason)
	if f.Range != "" {
		s += " (" + f.Range + ")"
	}
	return s
}

func pinFindings(t *testing.T, got []Finding, want []string) {
	t.Helper()
	var lines []string
	for _, f := range got {
		lines = append(lines, reportLine(f))
	}
	if len(lines) != len(want) {
		t.Fatalf("findings = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestEscapeSuiteRejected pins the exact verifier report for every
// PR-2 adversarial escape program: each is flagged statically, before
// it would ever run.
func TestEscapeSuiteRejected(t *testing.T) {
	secret := uint32(0x0040_3000) // a hidden PPL-0 page address
	kernelTarget := uint32(0xC000_1000)
	escapeOff := int32(0x0003_0000) // a victim segment offset beyond the attacker's limit

	cases := []struct {
		name string
		src  string
		lay  Layout
		want []string
	}{
		{
			name: "user abs write to hidden page",
			src: fmt.Sprintf(`
				.global escape
				.text
				escape:
					mov eax, 1
					mov [%d], eax
					ret
			`, int32(secret)),
			lay: userLayout(),
			want: []string{
				"#1 absolute write outside the declared regions (abs[0x403000,0x403003])",
			},
		},
		{
			name: "user indirect jump into the kernel",
			src: fmt.Sprintf(`
				.global escape
				.text
				escape:
					mov eax, %d
					jmp eax
			`, int32(kernelTarget)),
			lay: userLayout(),
			want: []string{
				"#1 indirect jump outside module text (abs[0xc0001000,0xc0001000])",
			},
		},
		{
			name: "user lcall at the kernel code descriptor",
			src: `
				.global escape
				.text
				escape:
					lcall 0x08
					ret
			`,
			lay: userLayout(),
			want: []string{
				"#0 far call at a literal selector bypasses the published gates",
			},
		},
		{
			name: "user lret to a forged ring-0 selector",
			src: `
				.global escape
				.text
				escape:
					push 0x08
					push 0
					lret
			`,
			lay: userLayout(),
			want: []string{
				"#2 far return forges a privilege transition",
			},
		},
		{
			name: "kernel abs write beyond the segment",
			src: fmt.Sprintf(`
				.global attack
				.text
				attack:
					mov eax, 255
					mov [%d], eax
					ret
			`, escapeOff),
			lay: kernelLayout(),
			want: []string{
				"#1 absolute write outside the declared regions (abs[0x30000,0x30003])",
			},
		},
		{
			name: "kernel indirect jump beyond the segment",
			src: fmt.Sprintf(`
				.global attack
				.text
				attack:
					mov eax, %d
					jmp eax
			`, escapeOff),
			lay: kernelLayout(),
			want: []string{
				"#1 indirect jump outside module text (abs[0x30000,0x30000])",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustCheck(t, "escape", tc.src, tc.lay)
			if rep.Status != Rejected {
				t.Fatalf("status = %v, want rejected; report: %+v", rep.Status, rep)
			}
			if rep.Accepted() {
				t.Error("Accepted() = true for a rejected report")
			}
			if err := rep.Err(); err == nil {
				t.Error("Err() = nil for a rejected report")
			}
			pinFindings(t, rep.Violations, tc.want)
		})
	}
}

// hotLoopSrc is the counted compute loop the tier-2 elision benchmark
// drives: both scratch accesses are anchored data operands, so they
// verify Clean with elidable facts, and the dec/jne latch proves the
// step bound.
const hotLoopSrc = `
	.global hotloop
	.text
	hotloop:
		mov eax, 0
		mov ecx, 1000
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		dec ecx
		jne loop
		ret
	.data
	scratch: .long 0
`

func TestHotLoopClean(t *testing.T) {
	rep := mustCheck(t, "hotloop", hotLoopSrc, kernelLayout())
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; violations %v unproven %v", rep.Status, rep.Violations, rep.Unproven)
	}
	if !rep.Bounded {
		t.Fatal("hot loop must have a proven step bound")
	}
	// 8 straight-line nodes + 1000 iterations of the 5-instruction body.
	if rep.MaxSteps != 8+1000*5 {
		t.Errorf("MaxSteps = %d, want %d", rep.MaxSteps, 8+1000*5)
	}
	if rep.Proven == 0 {
		t.Error("no proven accesses")
	}
	if rep.Elidable != 2 {
		t.Errorf("Elidable = %d, want 2 (both scratch operands)", rep.Elidable)
	}

	// Annotate exports the facts onto the operands, in the
	// pre-relocation displacement domain.
	obj := isa.MustAssemble("hotloop", hotLoopSrc).Clone()
	rep.Annotate(obj)
	var proved int
	for i := range obj.Text {
		for _, op := range []*isa.Operand{&obj.Text[i].Dst, &obj.Text[i].Src} {
			if op.Proved {
				proved++
				if op.ProvedEnd != 3 {
					t.Errorf("text[%d] ProvedEnd = %d, want 3 (scratch is 4 bytes at offset 0)", i, op.ProvedEnd)
				}
			}
		}
	}
	if proved != 2 {
		t.Errorf("annotated %d operands, want 2", proved)
	}
}

func TestNullFnClean(t *testing.T) {
	rep := mustCheck(t, "null", `
		.global nullfn
		.text
		nullfn: ret
	`, userLayout())
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}
	if !rep.Bounded || rep.MaxSteps != 1 {
		t.Errorf("Bounded=%v MaxSteps=%d, want bounded 1 step", rep.Bounded, rep.MaxSteps)
	}
}

// TestStrrevGuarded: data-dependent loops and pointer-chasing reads
// cannot be discharged statically, but nothing is provably wrong —
// the runtime checks carry the burden (the paper's own design point).
func TestStrrevGuarded(t *testing.T) {
	src := `
		.global strrev
		.text
		strrev:
			push ebx
			push esi
			push edi
			mov esi, [esp+16]
			mov ecx, esi
		len:
			movb edx, [ecx]
			inc ecx
			cmp edx, 0
			jne len
			sub ecx, 2
			mov edi, esi
			mov eax, esi
		rev:
			cmp edi, ecx
			jae done
			movb edx, [edi]
			movb ebx, [ecx]
			movb [edi], ebx
			movb [ecx], edx
			inc edi
			dec ecx
			jmp rev
		done:
			pop edi
			pop esi
			pop ebx
			ret
	`
	rep := mustCheck(t, "strrev", src, userLayout())
	if rep.Status != Guarded {
		t.Fatalf("status = %v, want guarded; violations: %v", rep.Status, rep.Violations)
	}
	if rep.Bounded {
		t.Error("strrev's loops must not get a proven bound")
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations = %v, want none", rep.Violations)
	}
}

// TestArgPointerProven: dereferences through the typed entry argument
// are proved against the declared shared-area size.
func TestArgPointerProven(t *testing.T) {
	src := `
		.global fn
		.text
		fn:
			mov eax, [esp+4]
			mov ecx, [eax]
			mov edx, [eax+4]
			add ecx, edx
			mov [eax+8], ecx
			ret
	`
	lay := userLayout()
	lay.Arg = ArgSpec{Pointer: true, Size: 1024, Perm: PermRW}
	rep := mustCheck(t, "argfn", src, lay)
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}

	// The same program with a 8-byte argument area cannot discharge
	// the [eax+8] store.
	lay.Arg.Size = 8
	rep = mustCheck(t, "argfn", src, lay)
	if rep.Status != Guarded {
		t.Fatalf("small-arg status = %v, want guarded; %v", rep.Status, rep.Violations)
	}
}

// TestDataBounds: anchored data accesses verify against the module's
// data+bss extent; out-of-bounds ones are definite violations.
func TestDataBounds(t *testing.T) {
	rep := mustCheck(t, "oob", `
		.global fn
		.text
		fn:
			mov eax, [scratch+64]
			ret
		.data
		scratch: .long 0
	`, kernelLayout())
	if rep.Status != Rejected {
		t.Fatalf("status = %v, want rejected", rep.Status)
	}
	pinFindings(t, rep.Violations, []string{
		"#0 module data read out of bounds (data[64,67])",
	})
}

// TestStoreIntoText is rejected outright.
func TestStoreIntoText(t *testing.T) {
	rep := mustCheck(t, "smash", `
		.global fn
		.text
		fn:
			mov [fn], eax
			ret
	`, kernelLayout())
	if rep.Status != Rejected {
		t.Fatalf("status = %v, want rejected; %v", rep.Status, rep.Unproven)
	}
	pinFindings(t, rep.Violations, []string{
		"#0 store into module text (text[0,3])",
	})
}

// TestBudget: a provably huge counted loop is rejected against the
// layout budget, while a modest one passes.
func TestBudget(t *testing.T) {
	src := func(n int) string {
		return fmt.Sprintf(`
			.global fn
			.text
			fn:
				mov ecx, %d
			loop:
				dec ecx
				jne loop
				ret
		`, n)
	}
	lay := kernelLayout()
	lay.Budget = 10_000
	if rep := mustCheck(t, "small", src(1000), lay); rep.Status != Clean {
		t.Fatalf("small loop status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}
	rep := mustCheck(t, "big", src(1_000_000), lay)
	if rep.Status != Rejected {
		t.Fatalf("big loop status = %v, want rejected", rep.Status)
	}
	if !strings.Contains(rep.Violations[0].Reason, "exceeds the layout budget") {
		t.Errorf("reason = %q", rep.Violations[0].Reason)
	}
}

// TestRequireBounded turns unprovable termination from Guarded into
// Rejected.
func TestRequireBounded(t *testing.T) {
	src := `
		.global fn
		.text
		fn:
			mov eax, [esp+4]
		spin:
			dec eax
			jne spin
			ret
	`
	lay := kernelLayout()
	if rep := mustCheck(t, "spin", src, lay); rep.Status != Guarded {
		t.Fatalf("status = %v, want guarded; %v", rep.Status, rep.Violations)
	}
	lay.RequireBounded = true
	rep := mustCheck(t, "spin", src, lay)
	if rep.Status != Rejected {
		t.Fatalf("strict status = %v, want rejected", rep.Status)
	}
	pinFindings(t, rep.Violations, []string{"#2 loop bound not provable"})
}

// TestIntVectors: only the environment's vectors are allowed.
func TestIntVectors(t *testing.T) {
	src := `
		.global fn
		.text
		fn:
			int 0x80
			ret
	`
	if rep := mustCheck(t, "sys", src, userLayout()); rep.Status == Rejected {
		t.Fatalf("int 0x80 under user layout rejected: %v", rep.Violations)
	}
	rep := mustCheck(t, "sys", src, kernelLayout())
	if rep.Status != Rejected {
		t.Fatalf("int 0x80 under kernel layout = %v, want rejected", rep.Status)
	}
	pinFindings(t, rep.Violations, []string{"#0 int 0x80: vector not provided by the environment"})
}

// TestExternPolicy: extern calls ride the PLT when the layout allows
// them and reject otherwise.
func TestExternPolicy(t *testing.T) {
	src := `
		.global fn
		.text
		fn:
			push 3
			call helper
			add esp, 4
			ret
	`
	if rep := mustCheck(t, "ext", src, userLayout()); rep.Status == Rejected {
		t.Fatalf("extern call under permissive layout rejected: %v", rep.Violations)
	}
	lay := userLayout()
	lay.AllowExterns = false
	rep := mustCheck(t, "ext", src, lay)
	if rep.Status != Rejected {
		t.Fatalf("status = %v, want rejected", rep.Status)
	}
	pinFindings(t, rep.Violations, []string{`#1 call to extern "helper" not permitted by layout`})
}

// TestStackDiscipline: frame traffic within the declared window is
// proven; under-runs are violations.
func TestStackDiscipline(t *testing.T) {
	rep := mustCheck(t, "frame", `
		.global fn
		.text
		fn:
			push ebx
			mov ebx, [esp+8]
			mov [esp], ebx
			pop ebx
			ret
	`, kernelLayout())
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}

	// Reading far above the entry frame leaves the read window.
	rep = mustCheck(t, "peek", `
		.global fn
		.text
		fn:
			mov eax, [esp+64]
			ret
	`, kernelLayout())
	if rep.Status != Rejected {
		t.Fatalf("status = %v, want rejected; %v", rep.Status, rep.Unproven)
	}
	pinFindings(t, rep.Violations, []string{
		"#0 stack-relative read outside the extension stack (stack[64,67])",
	})

	// An unbalanced return is left to the runtime (Guarded).
	rep = mustCheck(t, "unbal", `
		.global fn
		.text
		fn:
			push eax
			ret
	`, kernelLayout())
	if rep.Status != Guarded {
		t.Fatalf("status = %v, want guarded; %v", rep.Status, rep.Violations)
	}
}

// TestAbsStoreStackAliasHavoc pins the fix for a soundness hole: the
// kernel layout's declared scratch+stack region contains the extension
// stack, so a proven absolute store can alias a tracked stack slot.
// The verifier must forget the slot's abstract value — otherwise the
// popped "pointer" below would keep its pushed safe constant, the
// store through it would be proven with an elidable fact, and tier-2
// elision would skip the segment-limit check on an address the
// absolute store replaced at run time.
func TestAbsStoreStackAliasHavoc(t *testing.T) {
	// kernelLayout entry ESP is absolute 0x4FF8; after the push the
	// tracked slot lives at absolute 0x4FF4 (= 20468) — exactly where
	// the absolute store lands.
	src := `
		.global fn
		.text
		fn:
			push 1280
			mov ecx, [esp+8]
			mov [20468], ecx
			pop ebx
			mov [ebx], ecx
			ret
	`
	rep := mustCheck(t, "alias", src, kernelLayout())
	if rep.Status != Guarded {
		t.Fatalf("status = %v, want guarded; violations %v unproven %v",
			rep.Status, rep.Violations, rep.Unproven)
	}
	var demoted bool
	for _, f := range rep.Unproven {
		if f.Index == 4 && strings.Contains(f.Reason, "unresolved address") {
			demoted = true
		}
	}
	if !demoted {
		t.Errorf("store through the clobbered slot not demoted: %v", rep.Unproven)
	}
	// Only the absolute store itself stays elidable; the store through
	// the popped value must not carry a fact.
	if rep.Elidable != 1 {
		t.Errorf("Elidable = %d, want 1", rep.Elidable)
	}

	// The same program with the absolute store below the stack window
	// (scratch area at 0x500) cannot alias the slot: the popped
	// constant survives and everything is proven.
	clean := `
		.global fn
		.text
		fn:
			push 1280
			mov ecx, [esp+8]
			mov [1280], ecx
			pop ebx
			mov [ebx], ecx
			ret
	`
	rep = mustCheck(t, "scratch", clean, kernelLayout())
	if rep.Status != Clean {
		t.Fatalf("scratch-store status = %v, want clean; %v %v",
			rep.Status, rep.Violations, rep.Unproven)
	}
	if rep.Elidable != 2 {
		t.Errorf("scratch-store Elidable = %d, want 2", rep.Elidable)
	}
}

// TestNestedLoopBound: an inner counted loop runs in full once per
// outer iteration, so the proven step bound must multiply the trip
// counts. A budget sized between the (formerly reported) additive
// undercount and the true multiplicative bound must reject.
func TestNestedLoopBound(t *testing.T) {
	src := `
		.global fn
		.text
		fn:
			mov edx, 100
		outer:
			mov ecx, 50
		inner:
			dec ecx
			jne inner
			dec edx
			jne outer
			ret
	`
	rep := mustCheck(t, "nest", src, kernelLayout())
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}
	if !rep.Bounded {
		t.Fatal("nested counted loops must have a proven bound")
	}
	// 7 straight-line nodes + 100 outer iterations x (3 own body
	// nodes + 50 inner iterations x 2 inner body nodes).
	const want = 7 + 100*(3+50*2)
	if rep.MaxSteps != want {
		t.Errorf("MaxSteps = %d, want %d", rep.MaxSteps, want)
	}

	// The additive undercount was 7 + 100*5 + 50*2 = 607: a budget of
	// 5000 would have passed it while the true bound is 10307.
	lay := kernelLayout()
	lay.Budget = 5000
	rep = mustCheck(t, "nest", src, lay)
	if rep.Status != Rejected {
		t.Fatalf("budget status = %v, want rejected", rep.Status)
	}
	if !strings.Contains(rep.Violations[0].Reason, "exceeds the layout budget") {
		t.Errorf("reason = %q", rep.Violations[0].Reason)
	}
}

// TestSharedSiteFactKilled: an instruction shared by two entry points
// can be proven absolute in one context and stack-relative in the
// other. The absolute context's elidable fact must die — its end bound
// says nothing about the stack addresses the other entry produces, so
// annotating it would break the ProvedEnd contract tier-2 elision
// relies on.
func TestSharedSiteFactKilled(t *testing.T) {
	src := `
		.global a
		.global b
		.text
		a:
			mov ebx, 640
			jmp common
		b:
			mov ebx, esp
			sub ebx, 8
			jmp common
		common:
			mov [ebx], ecx
			ret
	`
	rep := mustCheck(t, "shared", src, kernelLayout())
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}
	if rep.Elidable != 0 {
		t.Errorf("Elidable = %d, want 0 (mixed-domain site must not export a fact)", rep.Elidable)
	}
	obj := isa.MustAssemble("shared", src).Clone()
	rep.Annotate(obj)
	for i := range obj.Text {
		if obj.Text[i].Dst.Proved || obj.Text[i].Src.Proved {
			t.Errorf("text[%d] annotated despite mixed proving domains", i)
		}
	}
}

// TestSFIMaskSequence: the rewriter's and/or mask-and-rebase sequence
// proves the store into the SFI region — the interval domain's
// raison d'être for the SFI backend.
func TestSFIMaskSequence(t *testing.T) {
	base, size := uint32(0x2000_0000), uint32(0x0001_0000)
	src := fmt.Sprintf(`
		.global fn
		.text
		fn:
			mov edi, [esp+4]
			and edi, %d
			or edi, %d
			mov [edi], eax
			ret
	`, int32(size-1), int32(base))
	// The region carries the classic SFI guard slack: a 4-byte access
	// masked to the last region byte spills up to 3 bytes past it, and
	// guard pages (not the mask) absorb that in the original design.
	lay := Layout{
		Backend:      "sfi",
		Regions:      []Region{{Name: "sfi", Lo: base, Hi: base + size + 2, Perm: PermW}},
		StackBelow:   16*4096 - 8,
		StackAbove:   8,
		AllowExterns: true,
	}
	rep := mustCheck(t, "sfi", src, lay)
	if rep.Status != Clean {
		t.Fatalf("status = %v, want clean; %v %v", rep.Status, rep.Violations, rep.Unproven)
	}
	if rep.Elidable != 1 {
		t.Errorf("Elidable = %d, want 1 (the masked store)", rep.Elidable)
	}
}

// TestReportJSON keeps the wire shape stable for BENCH_verify.json.
func TestReportJSON(t *testing.T) {
	rep := mustCheck(t, "hotloop", hotLoopSrc, kernelLayout())
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"status":"clean"`, `"bounded":true`, `"elidable_accesses":2`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON %s missing %q", b, want)
		}
	}
}

// TestNoEntry: an object with no global text symbol is rejected.
func TestNoEntry(t *testing.T) {
	rep := mustCheck(t, "empty", `
		.text
		local: ret
	`, userLayout())
	if rep.Status != Rejected {
		t.Fatalf("status = %v, want rejected", rep.Status)
	}
	pinFindings(t, rep.Violations, []string{"#0 no global text symbol to verify"})
}
