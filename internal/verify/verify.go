package verify

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// visitCap bounds dataflow visits per node; past it the node's state
// is widened straight to top so the fixpoint always terminates.
const visitCap = 50

// Check verifies obj against the declared layout. It analyzes every
// global text symbol as an environment entry point (plus any internal
// functions they call), and never mutates obj — use Report.Annotate
// to export the proved operand facts into a clone destined for the
// loader.
func Check(obj *isa.Object, lay Layout) *Report {
	an := &analysis{
		obj:      obj,
		lay:      &lay,
		dataSize: int64(len(obj.Data)) + int64(obj.BSSSize),
		rel:      make([]insRelocs, len(obj.Text)),
		vio:      map[string]bool{},
		unp:      map[string]bool{},
		proven:   map[string]bool{},
		demoted:  map[string]bool{},
		facts:    map[factKey]factState{},
		funcs:    map[int]*fn{},
		rep: &Report{
			Object:  obj.Name,
			Backend: lay.Backend,
		},
	}
	for i := range obj.Relocs {
		r := &obj.Relocs[i]
		if r.Index < 0 || r.Index >= len(obj.Text) {
			continue
		}
		switch r.Slot {
		case isa.RelDstImm:
			an.rel[r.Index].dstImm = r
		case isa.RelSrcImm:
			an.rel[r.Index].srcImm = r
		case isa.RelDstDisp:
			an.rel[r.Index].dstDisp = r
		case isa.RelSrcDisp:
			an.rel[r.Index].srcDisp = r
		}
	}

	// Entry points: every global text symbol (the environment may
	// bind any of them).
	var entries []int
	for _, s := range obj.Symbols {
		if s.Section != isa.SecText || !s.Global {
			continue
		}
		idx, ok := an.textIndex(int64(s.Off))
		if !ok {
			an.violation(0, "entry %q at misaligned or out-of-range text offset %#x", s.Name, s.Off)
			continue
		}
		an.rep.Entries = append(an.rep.Entries, s.Name)
		entries = append(entries, idx)
	}
	sort.Strings(an.rep.Entries)
	sort.Ints(entries)
	if len(entries) == 0 && len(an.rep.Violations) == 0 {
		an.violation(0, "no global text symbol to verify")
	}

	// Analyze entries with the environment's entry state, then any
	// internal call targets with an opaque own-frame state.
	for _, e := range entries {
		an.analyzeFn(e, true)
	}
	for len(an.queue) > 0 {
		e := an.queue[0]
		an.queue = an.queue[1:]
		an.analyzeFn(e, false)
	}

	an.finish(entries)
	return an.rep
}

type insRelocs struct {
	dstImm, srcImm, dstDisp, srcDisp *isa.Reloc
}

type factState struct {
	end  uint32
	dead bool
}

type analysis struct {
	obj      *isa.Object
	lay      *Layout
	rep      *Report
	rel      []insRelocs
	dataSize int64

	vio     map[string]bool // violation dedup
	unp     map[string]bool // unproven dedup
	proven  map[string]bool // proven access sites
	demoted map[string]bool // sites that failed in some context
	facts   map[factKey]factState

	funcs map[int]*fn
	queue []int

	// latchViolated: a strict-mode latch already carries a "loop bound
	// not provable" violation, so finish skips the blanket one.
	latchViolated bool
}

// edge is one CFG edge.
type edge struct{ from, to int }

type loopInfo struct {
	body       map[int]bool
	written    [8]bool
	havocCells bool
	latches    []int
}

type fn struct {
	entry    int
	nodes    map[int]bool
	succ     map[int][]int
	pred     map[int][]int
	backSet  map[edge]bool
	loops    map[int]*loopInfo
	callees  []int // one element per call site
	in       map[int]*state
	entryIn  map[int]*state // pre-havoc joins at loop heads
	visits   map[int]int
	bounded  bool
	steps    uint64
	analyzed bool
}

// ----------------------------------------------------------- state

type state struct {
	regs  [8]aval
	cells map[int64]aval // entry-ESP-relative stack slots
}

func (s *state) clone() *state {
	c := &state{regs: s.regs, cells: make(map[int64]aval, len(s.cells))}
	for k, v := range s.cells {
		c.cells[k] = v
	}
	return c
}

func (s *state) eq(o *state) bool {
	if s.regs != o.regs || len(s.cells) != len(o.cells) {
		return false
	}
	for k, v := range s.cells {
		if ov, ok := o.cells[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func joinState(a, b *state) *state {
	if a == nil {
		return b.clone()
	}
	j := &state{cells: map[int64]aval{}}
	for i := range j.regs {
		j.regs[i] = join(a.regs[i], b.regs[i])
	}
	for k, v := range a.cells {
		if bv, ok := b.cells[k]; ok {
			if jv := join(v, bv); !jv.isTop() {
				j.cells[k] = jv
			}
		}
	}
	return j
}

func havocCells(s *state) {
	for k := range s.cells {
		delete(s.cells, k)
	}
}

// havocCall models a transfer into trusted or separately-analyzed
// code: every register except the (convention-preserved) stack
// pointer and every tracked stack slot becomes unknown.
func havocCall(s *state) {
	esp := s.regs[isa.ESP]
	for i := range s.regs {
		s.regs[i] = top
	}
	s.regs[isa.ESP] = esp
	havocCells(s)
}

func espDelta(s *state) (int64, bool) {
	v := s.regs[isa.ESP]
	if v.r == rStack && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func topState() *state {
	s := &state{cells: map[int64]aval{}}
	for i := range s.regs {
		s.regs[i] = top
	}
	return s
}

func (an *analysis) entryState(isEntry bool) *state {
	s := topState()
	s.regs[isa.ESP] = aval{rStack, 0, 0}
	if isEntry && an.lay.Arg.Pointer {
		s.cells[4] = aval{rArg, 0, 0}
	}
	return s
}

// ------------------------------------------------- decode helpers

// textIndex converts a byte offset into an instruction index.
func (an *analysis) textIndex(off int64) (int, bool) {
	if off < 0 || off%isa.InstrSlot != 0 {
		return 0, false
	}
	idx := int(off / isa.InstrSlot)
	if idx >= len(an.obj.Text) {
		return 0, false
	}
	return idx, true
}

// anchorVal resolves a relocation into an abstract address: module
// data/bss and text symbols anchor their regions; externs are opaque
// until load time.
func (an *analysis) anchorVal(r *isa.Reloc, extra int32) aval {
	sym := an.obj.Symbols[r.Sym]
	if sym == nil {
		return top
	}
	base := int64(sym.Off) + int64(r.Addend) + int64(extra)
	switch sym.Section {
	case isa.SecData:
		return aval{rData, base, base}
	case isa.SecBSS:
		return aval{rData, int64(len(an.obj.Data)) + base, int64(len(an.obj.Data)) + base}
	case isa.SecText:
		return aval{rText, base, base}
	}
	return top
}

// addRaw is addAv without the constant normalization, for composing
// effective addresses whose signed intermediate terms must not wrap
// early.
func addRaw(a, b aval) aval {
	switch {
	case a.isTop() || b.isTop():
		return top
	case a.r == rConst && b.r == rConst:
		return aval{rConst, a.lo + b.lo, a.hi + b.hi}
	case a.r == rConst:
		return aval{b.r, b.lo + a.lo, b.hi + a.hi}
	case b.r == rConst:
		return aval{a.r, a.lo + b.lo, a.hi + b.hi}
	}
	return top
}

// effAddr evaluates a memory operand: the anchored displacement plus
// the register part. regPart is returned separately so fact bounds
// can be expressed in the pre-relocation displacement domain.
func (an *analysis) effAddr(op *isa.Operand, r *isa.Reloc, st *state) (full, regPart aval, anchored bool) {
	regPart = cst(0)
	if op.Base != isa.NoReg {
		regPart = addRaw(regPart, st.regs[op.Base])
	}
	if op.Index != isa.NoReg {
		sc := int64(op.Scale)
		if sc == 0 {
			sc = 1
		}
		regPart = addRaw(regPart, mulConst(st.regs[op.Index], sc))
	}
	if r != nil {
		full = addRaw(an.anchorVal(r, op.Disp), regPart)
	} else {
		full = addRaw(aval{rConst, int64(op.Disp), int64(op.Disp)}, regPart)
	}
	if full.r == rConst {
		full = norm(full)
	}
	return full, regPart, r != nil
}

// immVal evaluates an immediate operand (anchored by its relocation
// when one exists).
func (an *analysis) immVal(op *isa.Operand, r *isa.Reloc) aval {
	if r != nil {
		return an.anchorVal(r, op.Imm)
	}
	return cst(uint32(op.Imm))
}

// byteOf narrows a loaded or moved value to byte width.
func byteOf(v aval) aval {
	if x, ok := v.exact(); ok {
		return cst(x & 0xFF)
	}
	return aval{rConst, 0, 255}
}

// readOpVal evaluates an operand as a value source.
func (an *analysis) readOpVal(op *isa.Operand, imm, disp *isa.Reloc, size uint8, st *state) aval {
	var v aval
	switch op.Kind {
	case isa.KindImm:
		v = an.immVal(op, imm)
	case isa.KindReg:
		v = st.regs[op.Reg]
	case isa.KindMem:
		full, _, _ := an.effAddr(op, disp, st)
		v = top
		if full.r == rStack && full.lo == full.hi {
			if cv, ok := st.cells[full.lo]; ok {
				v = cv
			}
		}
	default:
		return top
	}
	if size == 1 {
		v = byteOf(v)
	}
	return v
}

// writeOp stores a value through an operand, tracking exact stack
// slots and conservatively wiping them when the store might alias the
// stack. Aliasing is possible not only through imprecise stack-
// relative or unresolved addresses: a declared region may contain the
// stack itself (the kernel segment's scratch+stack area holds the
// extension stack), and a region-relative store that is not proven
// inside its own allocation can land anywhere the runtime checks
// admit — including the stack window. Only stores proven inside a
// stack-disjoint allocation keep the tracked cells alive.
func (an *analysis) writeOp(op *isa.Operand, disp *isa.Reloc, v aval, size uint8, st *state) {
	switch op.Kind {
	case isa.KindReg:
		if size == 1 {
			v = byteOf(v)
		}
		st.regs[op.Reg] = v
	case isa.KindMem:
		full, _, _ := an.effAddr(op, disp, st)
		if full.r == rStack && full.lo == full.hi && size != 1 {
			st.cells[full.lo] = v
			return
		}
		if an.storeMayAliasStack(full, int64(size)) {
			havocCells(st)
		}
	}
}

// storeMayAliasStack reports whether a store through the abstract
// address full (accessing size bytes) could alias a tracked stack
// cell (including the argument slot at entry+4):
//
//   - any stack-relative (imprecise) or unresolved store may;
//   - an absolute store may when its interval can reach the stack
//     window a declared region contains (Layout.StackAbs), and also
//     when it is not proven inside a declared writable region at all
//     — nothing then pins where a runtime-surviving store lands;
//   - a data- or argument-relative store may unless proven inside its
//     own allocation: those allocations (module data at the loader's
//     placement, the staged shared area) are disjoint from the stack,
//     but a wild offset that survives the runtime segment and page
//     checks can still reach it.
func (an *analysis) storeMayAliasStack(full aval, size int64) bool {
	loB, hiB := full.lo, full.hi+size-1
	switch full.r {
	case rConst:
		if an.lay.StackAbsKnown {
			sLo := int64(an.lay.StackAbs) - int64(an.lay.StackBelow)
			sHi := int64(an.lay.StackAbs) + int64(an.lay.StackAbove) - 1
			if hiB >= sLo && loB <= sHi {
				return true
			}
		}
		return !an.constWithinRegion(loB, hiB, PermW)
	case rData:
		return loB < 0 || hiB >= an.dataSize
	case rArg:
		a := an.lay.Arg
		return !a.Pointer || PermW&^a.Perm != 0 || loB < 0 || hiB >= int64(a.Size)
	}
	return true // rStack (imprecise), rText, rTop
}

// constWithinRegion reports whether the absolute byte range [loB, hiB]
// lies inside one declared region permitting perm.
func (an *analysis) constWithinRegion(loB, hiB int64, perm Perm) bool {
	for i := range an.lay.Regions {
		rg := &an.lay.Regions[i]
		if loB >= int64(rg.Lo) && hiB <= int64(rg.Hi) && perm&^rg.Perm == 0 {
			return true
		}
	}
	return false
}

// ------------------------------------------------- findings

func (an *analysis) violation(idx int, format string, args ...any) {
	f := Finding{Index: idx, Reason: fmt.Sprintf(format, args...)}
	if idx >= 0 && idx < len(an.obj.Text) {
		f.Instr = an.obj.Text[idx].String()
	}
	key := fmt.Sprintf("%d|%s", idx, f.Reason)
	if an.vio[key] {
		return
	}
	an.vio[key] = true
	an.rep.Violations = append(an.rep.Violations, f)
}

func (an *analysis) violationRange(idx int, rng string, format string, args ...any) {
	f := Finding{Index: idx, Reason: fmt.Sprintf(format, args...), Range: rng}
	if idx >= 0 && idx < len(an.obj.Text) {
		f.Instr = an.obj.Text[idx].String()
	}
	key := fmt.Sprintf("%d|%s", idx, f.Reason)
	if an.vio[key] {
		return
	}
	an.vio[key] = true
	an.rep.Violations = append(an.rep.Violations, f)
}

func (an *analysis) unproven(idx int, rng string, format string, args ...any) {
	f := Finding{Index: idx, Reason: fmt.Sprintf(format, args...), Range: rng}
	if idx >= 0 && idx < len(an.obj.Text) {
		f.Instr = an.obj.Text[idx].String()
	}
	key := fmt.Sprintf("%d|%s", idx, f.Reason)
	if an.unp[key] {
		return
	}
	an.unp[key] = true
	an.rep.Unproven = append(an.rep.Unproven, f)
}

// ------------------------------------------------- CFG construction

// brTargetIdx resolves a text-relocated immediate transfer target to
// an instruction index.
func (an *analysis) brTargetIdx(idx int) (int, *isa.Symbol, bool) {
	r := an.rel[idx].dstImm
	if r == nil {
		return 0, nil, false
	}
	sym := an.obj.Symbols[r.Sym]
	if sym == nil || sym.Section != isa.SecText {
		return 0, sym, false
	}
	off := int64(sym.Off) + int64(r.Addend) + int64(an.obj.Text[idx].Dst.Imm)
	t, ok := an.textIndex(off)
	return t, sym, ok
}

// staticSucc computes an instruction's static successors, recording
// the control-policy violations that need no dataflow state.
func (an *analysis) staticSucc(idx int, f *fn) []int {
	ins := &an.obj.Text[idx]
	fallthru := func() []int {
		if idx+1 >= len(an.obj.Text) {
			an.violation(idx, "execution falls off the end of text")
			return nil
		}
		return []int{idx + 1}
	}
	switch {
	case ins.Op == isa.JMP:
		if ins.Dst.Kind == isa.KindImm {
			r := an.rel[idx].dstImm
			if r == nil {
				an.violation(idx, "jump to absolute literal address")
				return nil
			}
			if t, sym, ok := an.brTargetIdx(idx); ok {
				return []int{t}
			} else if sym != nil && sym.Section == isa.SecUndef {
				if !an.lay.AllowExterns {
					an.violation(idx, "tail call to extern %q not permitted by layout", sym.Name)
				}
				return nil // control leaves the module
			}
			an.violation(idx, "jump target outside module text")
			return nil
		}
		return nil // indirect: classified against state in the post-pass
	case ins.Op.IsBranch():
		r := an.rel[idx].dstImm
		if r == nil || ins.Dst.Kind != isa.KindImm {
			an.violation(idx, "conditional branch without a text target")
			return fallthru()
		}
		t, sym, ok := an.brTargetIdx(idx)
		if !ok {
			if sym != nil && sym.Section == isa.SecUndef {
				an.violation(idx, "conditional branch to extern %q", sym.Name)
			} else {
				an.violation(idx, "branch target outside module text")
			}
			return fallthru()
		}
		next := fallthru()
		return append(next, t)
	case ins.Op == isa.CALL:
		if ins.Dst.Kind == isa.KindImm {
			r := an.rel[idx].dstImm
			if r == nil {
				an.violation(idx, "call to absolute literal address")
				return nil
			}
			if t, sym, ok := an.brTargetIdx(idx); ok {
				f.callees = append(f.callees, t)
				an.queue = append(an.queue, t)
				// Intra-module calls are legal but keep the program
				// out of Clean: the callee's stack depth and effects
				// are only checked per-frame, not end to end.
				an.unproven(idx, "", "intra-module call: cross-frame stack depth left to the runtime")
				return fallthru()
			} else if sym != nil && sym.Section == isa.SecUndef {
				if !an.lay.AllowExterns {
					an.violation(idx, "call to extern %q not permitted by layout", sym.Name)
					return nil
				}
				return fallthru()
			}
			an.violation(idx, "call target outside module text")
			return nil
		}
		return nil // indirect call: post-pass
	case ins.Op == isa.RET:
		return nil
	case ins.Op == isa.LCALL:
		r := an.rel[idx].dstImm
		sym := (*isa.Symbol)(nil)
		if r != nil {
			sym = an.obj.Symbols[r.Sym]
		}
		switch {
		case ins.Dst.Kind != isa.KindImm:
			an.violation(idx, "indirect far call")
			return nil
		case r == nil:
			an.violation(idx, "far call at a literal selector bypasses the published gates")
			return nil
		case sym != nil && sym.Section == isa.SecUndef && an.lay.AllowExterns:
			return fallthru() // published service gate
		case sym != nil && sym.Section == isa.SecUndef:
			an.violation(idx, "far call to extern %q not permitted by layout", sym.Name)
			return nil
		default:
			an.violation(idx, "far call into module text")
			return nil
		}
	case ins.Op == isa.LRET:
		an.violation(idx, "far return forges a privilege transition")
		return nil
	case ins.Op == isa.IRET:
		an.violation(idx, "iret outside the kernel's interrupt path")
		return nil
	case ins.Op == isa.HLT:
		an.violation(idx, "hlt is privileged")
		return nil
	case ins.Op == isa.INT:
		vec := uint8(ins.Dst.Imm)
		if ins.Dst.Kind != isa.KindImm || !an.lay.intAllowed(vec) {
			an.violation(idx, "int %#x: vector not provided by the environment", ins.Dst.Imm)
		}
		return fallthru()
	default:
		return fallthru()
	}
}
