package filter

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/fleet"
)

// fleetFilter is one fleet worker: a complete Palladium machine with
// the compiled filter insmod'ed as a kernel extension. Each worker
// owns its machine outright, so concurrent matching never shares
// simulator state.
type fleetFilter struct {
	s   *core.System
	fil *Filter
}

// SimCycles implements fleet.Machine.
func (w *fleetFilter) SimCycles() float64 { return w.s.K.Clock.Cycles() }

// Fleet is a pool of packet-filtering machines, the concurrent version
// of the Figure 7 Palladium path: N kernels each running the compiled
// filter extension, splitting an incoming packet stream.
type Fleet struct {
	Pool *fleet.Pool[*fleetFilter]
}

// FleetResult summarizes a concurrent filtering run.
type FleetResult struct {
	Workers int
	Packets int
	Matched int
	// AggregatePktPerSec sums each machine's simulated packet rate
	// over the span it measured locally.
	AggregatePktPerSec float64
	// PerWorkerPackets lists how many packets each machine filtered.
	PerWorkerPackets []uint64
	// WallSeconds is the host wall-clock time for the run.
	WallSeconds float64
	// Steals counts work-stealing dispatches during THIS run only.
	Steals uint64
}

// NewFleet boots `workers` machines, each with its own compiled filter
// for the given conjunction terms.
func NewFleet(workers int, terms []bpf.Term) (*Fleet, error) {
	pool, err := fleet.New(fleet.Config{Workers: workers}, func(int) (*fleetFilter, error) {
		s, err := core.NewSystem(cycles.Measured())
		if err != nil {
			return nil, err
		}
		if _, err := s.K.CreateProcess(); err != nil {
			return nil, err
		}
		fil, err := NewCompiled(s, terms)
		if err != nil {
			return nil, err
		}
		return &fleetFilter{s: s, fil: fil}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fleet{Pool: pool}, nil
}

// MatchAll pushes the packet stream through the fleet and reports the
// match count plus the aggregate simulated filtering rate. Packets are
// read-only and may be shared between workers.
func (f *Fleet) MatchAll(pkts [][]byte) (FleetResult, error) {
	run := f.Pool.BeginRun()
	workers := f.Pool.Workers()
	start := time.Now()
	var matched atomic.Int64
	for i, pkt := range pkts {
		pkt := pkt
		// Pinned round-robin placement, as in webserver.Fleet.Serve:
		// simulated placement must not depend on host scheduling.
		err := f.Pool.SubmitTo(i%workers, func(_ int, w *fleetFilter) error {
			ok, err := w.fil.Match(pkt)
			if err != nil {
				return err
			}
			if ok {
				matched.Add(1)
			}
			return nil
		})
		if err != nil {
			return FleetResult{}, err
		}
	}
	f.Pool.Drain()
	rs := run.Stats()

	res := FleetResult{
		Workers:          len(rs.Workers),
		Packets:          len(pkts),
		Matched:          int(matched.Load()),
		PerWorkerPackets: make([]uint64, len(rs.Workers)),
		WallSeconds:      time.Since(start).Seconds(),
		Steals:           rs.Steals,
	}
	for w := range rs.Workers {
		n := rs.Workers[w].Requests
		cyc := rs.Workers[w].SpanCycles
		res.PerWorkerPackets[w] = n
		if n == 0 || cyc == 0 {
			continue
		}
		hz := f.Pool.Machine(w).s.K.Clock.MHz() * 1e6
		res.AggregatePktPerSec += float64(n) / (cyc / hz)
	}
	if rs.Errors != 0 {
		return res, fmt.Errorf("filter: %d fleet packets failed", rs.Errors)
	}
	return res, nil
}

// Close drains and shuts the fleet down.
func (f *Fleet) Close() error {
	_, err := f.Pool.Close()
	return err
}
