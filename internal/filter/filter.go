// Package filter implements the packet-filtering application of
// Section 5.2: a compiled filter that runs as a Palladium kernel
// extension at native speed, compared against the interpreted BPF
// filter used by tcpdump. Figure 7 plots both for conjunction rules of
// 0-4 terms.
package filter

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/sandbox"
)

// HeaderLen is how many packet bytes the kernel stages into the
// extension's shared data area (an Ethernet + IPv4 header's worth).
const HeaderLen = 34

// MakeUDPPacket builds a deterministic synthetic Ethernet/IPv4/UDP
// packet of the given total length.
func MakeUDPPacket(srcPort, dstPort uint16, length int) []byte {
	if length < 42 {
		length = 42
	}
	p := make([]byte, length)
	for i := range p {
		p[i] = byte(i*13 + 7)
	}
	// Ethernet: dst 0-5, src 6-11, ethertype 12-13.
	p[12], p[13] = 0x08, 0x00
	// IPv4 header at 14: version/ihl, ..., protocol at 23.
	p[14] = 0x45
	p[23] = 17 // UDP
	// UDP ports at 34-37.
	p[34], p[35] = byte(srcPort>>8), byte(srcPort)
	p[36], p[37] = byte(dstPort>>8), byte(dstPort)
	return p
}

// TermsTrueFor builds n conjunction terms that are all true for pkt —
// the Figure-7 workload ("a varying number of terms linked by a
// conjunction, when all terms are true").
func TermsTrueFor(pkt []byte, n int) []bpf.Term {
	candidates := []bpf.Term{
		{Offset: 12, Size: 2, Value: uint32(pkt[12])<<8 | uint32(pkt[13])}, // ethertype
		{Offset: 23, Size: 1, Value: uint32(pkt[23])},                      // IP protocol
		{Offset: 14, Size: 1, Value: uint32(pkt[14])},                      // version/ihl
		{Offset: 30, Size: 1, Value: uint32(pkt[30])},                      // dst addr byte
		{Offset: 26, Size: 1, Value: uint32(pkt[26])},                      // src addr byte
		{Offset: 31, Size: 1, Value: uint32(pkt[31])},
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n]
}

// Evaluator is a packet filter with a cycle-accounted Match. There is
// exactly one implementation — *Filter, a sandbox.Extension plus a
// staging policy — shared by the serial Figure 7 harness, the matrix
// runner and the concurrent fleet, so every isolation mechanism's
// filter goes through the same dispatch type.
type Evaluator interface {
	Match(pkt []byte) (bool, error)
	Name() string
}

// Filter adapts a sandbox.Extension to the packet-filter workload:
// Match stages the packet into the extension's view and invokes it.
type Filter struct {
	name string
	ext  sandbox.Extension
	// Seg is the kernel extension segment confining the compiled
	// filter (nil for backends without one); tests inspect its
	// descriptors.
	Seg *core.ExtSegment
	// headerOnly stages only the HeaderLen-byte header, modeling the
	// kernel copying packet headers into the extension's shared area;
	// false hands the interpreter the packet the kernel already
	// holds.
	headerOnly bool
}

// NewFilter wraps an arbitrary sandbox extension as a packet filter;
// the matrix runner uses it to run the same filter program under
// backends the paper never measured.
func NewFilter(name string, ext sandbox.Extension, headerOnly bool) *Filter {
	f := &Filter{name: name, ext: ext, headerOnly: headerOnly}
	if seg, ok := ext.(interface{ Segment() *core.ExtSegment }); ok {
		f.Seg = seg.Segment()
	}
	return f
}

// Match implements Evaluator: stage the packet (or its header), then
// invoke the extension with the staged byte count.
func (f *Filter) Match(pkt []byte) (bool, error) {
	b := pkt
	if f.headerOnly {
		n := HeaderLen
		if n > len(pkt) {
			n = len(pkt)
		}
		b = pkt[:n]
	}
	if st, ok := f.ext.(sandbox.Stager); ok {
		if err := st.Stage(b); err != nil {
			return false, err
		}
	}
	v, err := f.ext.Invoke(uint32(len(b)))
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// Name implements Evaluator.
func (f *Filter) Name() string { return f.name }

// Extension exposes the backing sandbox extension.
func (f *Filter) Extension() sandbox.Extension { return f.ext }

// NewInterpreted validates and installs an interpreted filter: the
// bpf sandbox backend, the kernel interpreting the filter over the
// packet it already holds.
func NewInterpreted(s *core.System, terms []bpf.Term) (*Filter, error) {
	b, err := sandbox.Open("bpf", sandbox.HostFor(s))
	if err != nil {
		return nil, err
	}
	ext, err := b.Load(nil, sandbox.LoadOptions{BPF: bpf.Conjunction(terms)})
	if err != nil {
		return nil, err
	}
	return NewFilter("BPF", ext, false), nil
}

// compiledSeq disambiguates the entry symbols of compiled filters; it
// is atomic because fleet workers on independent machines may compile
// filters concurrently.
var compiledSeq atomic.Int64

// CompileObject compiles the conjunction for the given terms to a
// native extension object whose entry reads staged packet bytes from
// the `shared_area` module symbol — loadable under any native
// backend. It returns the object and its entry symbol. Compilation
// and assembly are memoized per program shape (the source embeds a
// fixed entry name); only the post-clone symbol rename is per call,
// so the per-load entry symbols stay unique across a system's
// Extension Function Table.
func CompileObject(terms []bpf.Term) (*isa.Object, string, error) {
	prog := bpf.Conjunction(terms)
	text, err := bpf.Compile(prog, "pfilter", "shared_area")
	if err != nil {
		return nil, "", err
	}
	src := text + "\n.data\n.global shared_area\nshared_area: .space 2048\n"
	obj, err := isa.AssembleCached("pfilter", src)
	if err != nil {
		return nil, "", fmt.Errorf("filter: assembling compiled filter: %w", err)
	}
	entry := fmt.Sprintf("pfilter_%d", compiledSeq.Add(1))
	if !obj.RenameSymbol("pfilter", entry) {
		return nil, "", fmt.Errorf("filter: compiled filter lacks its entry symbol")
	}
	return obj, entry, nil
}

// NewCompiled compiles the conjunction and loads it through the
// palladium-kernel sandbox backend: a fresh extension segment, the
// module insmod'ed into it, packet headers staged into its shared
// area by the kernel.
func NewCompiled(s *core.System, terms []bpf.Term) (*Filter, error) {
	obj, entry, err := CompileObject(terms)
	if err != nil {
		return nil, err
	}
	b, err := sandbox.Open("palladium-kernel", sandbox.HostFor(s))
	if err != nil {
		return nil, err
	}
	ext, err := b.Load(obj, sandbox.LoadOptions{Entry: entry, SharedSymbol: "shared_area"})
	if err != nil {
		return nil, err
	}
	return NewFilter("Palladium", ext, true), nil
}

// MeasureMatch returns the cycles one Match consumes (after a warm-up
// call, as in the paper's cache-warm methodology).
func MeasureMatch(s *core.System, f Evaluator, pkt []byte) (float64, error) {
	if _, err := f.Match(pkt); err != nil {
		return 0, err
	}
	start := s.K.Clock.Cycles()
	if _, err := f.Match(pkt); err != nil {
		return 0, err
	}
	return s.K.Clock.Cycles() - start, nil
}
