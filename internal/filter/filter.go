// Package filter implements the packet-filtering application of
// Section 5.2: a compiled filter that runs as a Palladium kernel
// extension at native speed, compared against the interpreted BPF
// filter used by tcpdump. Figure 7 plots both for conjunction rules of
// 0-4 terms.
package filter

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/isa"
)

// HeaderLen is how many packet bytes the kernel stages into the
// extension's shared data area (an Ethernet + IPv4 header's worth).
const HeaderLen = 34

// MakeUDPPacket builds a deterministic synthetic Ethernet/IPv4/UDP
// packet of the given total length.
func MakeUDPPacket(srcPort, dstPort uint16, length int) []byte {
	if length < 42 {
		length = 42
	}
	p := make([]byte, length)
	for i := range p {
		p[i] = byte(i*13 + 7)
	}
	// Ethernet: dst 0-5, src 6-11, ethertype 12-13.
	p[12], p[13] = 0x08, 0x00
	// IPv4 header at 14: version/ihl, ..., protocol at 23.
	p[14] = 0x45
	p[23] = 17 // UDP
	// UDP ports at 34-37.
	p[34], p[35] = byte(srcPort>>8), byte(srcPort)
	p[36], p[37] = byte(dstPort>>8), byte(dstPort)
	return p
}

// TermsTrueFor builds n conjunction terms that are all true for pkt —
// the Figure-7 workload ("a varying number of terms linked by a
// conjunction, when all terms are true").
func TermsTrueFor(pkt []byte, n int) []bpf.Term {
	candidates := []bpf.Term{
		{Offset: 12, Size: 2, Value: uint32(pkt[12])<<8 | uint32(pkt[13])}, // ethertype
		{Offset: 23, Size: 1, Value: uint32(pkt[23])},                      // IP protocol
		{Offset: 14, Size: 1, Value: uint32(pkt[14])},                      // version/ihl
		{Offset: 30, Size: 1, Value: uint32(pkt[30])},                      // dst addr byte
		{Offset: 26, Size: 1, Value: uint32(pkt[26])},                      // src addr byte
		{Offset: 31, Size: 1, Value: uint32(pkt[31])},
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n]
}

// Evaluator is a packet filter with a cycle-accounted Match.
type Evaluator interface {
	Match(pkt []byte) (bool, error)
	Name() string
}

// Interpreted is the BPF baseline: the kernel interprets the filter
// over the packet it already holds.
type Interpreted struct {
	In   *bpf.Interp
	Prog bpf.Program
}

// NewInterpreted validates and installs an interpreted filter.
func NewInterpreted(s *core.System, terms []bpf.Term) (*Interpreted, error) {
	prog := bpf.Conjunction(terms)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Interpreted{In: bpf.NewInterp(s.K.Clock), Prog: prog}, nil
}

// Match implements Evaluator.
func (f *Interpreted) Match(pkt []byte) (bool, error) {
	v, err := f.In.Run(f.Prog, pkt)
	return v != 0, err
}

// Name implements Evaluator.
func (f *Interpreted) Name() string { return "BPF" }

// compiledSeq disambiguates the entry symbols of compiled filters; it
// is atomic because fleet workers on independent machines may compile
// filters concurrently.
var compiledSeq atomic.Int64

// Compiled is the Palladium path: the filter compiled to native code
// and loaded as a kernel extension; the kernel stages packet headers
// into the extension's shared data area and invokes the filter as a
// protected call.
type Compiled struct {
	S         *core.System
	Seg       *core.ExtSegment
	Fn        *core.KernelExtensionFunc
	sharedOff uint32
}

// NewCompiled compiles the conjunction, insmods it into a fresh
// extension segment and locates its shared area.
func NewCompiled(s *core.System, terms []bpf.Term) (*Compiled, error) {
	prog := bpf.Conjunction(terms)
	entry := fmt.Sprintf("pfilter_%d", compiledSeq.Add(1))
	text, err := bpf.Compile(prog, entry, "shared_area")
	if err != nil {
		return nil, err
	}
	src := text + "\n.data\n.global shared_area\nshared_area: .space 2048\n"
	obj, err := isa.Assemble(entry, src)
	if err != nil {
		return nil, fmt.Errorf("filter: assembling compiled filter: %w", err)
	}
	seg, err := s.NewExtSegment(entry, 0)
	if err != nil {
		return nil, err
	}
	im, err := s.Insmod(seg, obj)
	if err != nil {
		return nil, err
	}
	fn, ok := s.ExtensionFunction(entry)
	if !ok {
		return nil, fmt.Errorf("filter: %s not registered", entry)
	}
	off, ok := im.Lookup("shared_area")
	if !ok {
		return nil, fmt.Errorf("filter: shared_area symbol missing")
	}
	return &Compiled{S: s, Seg: seg, Fn: fn, sharedOff: off}, nil
}

// Match implements Evaluator: stage the header, invoke the extension.
func (f *Compiled) Match(pkt []byte) (bool, error) {
	n := HeaderLen
	if n > len(pkt) {
		n = len(pkt)
	}
	if err := f.S.WriteShared(f.Seg, f.sharedOff, pkt[:n]); err != nil {
		return false, err
	}
	v, err := f.Fn.Invoke(uint32(n))
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// Name implements Evaluator.
func (f *Compiled) Name() string { return "Palladium" }

// MeasureMatch returns the cycles one Match consumes (after a warm-up
// call, as in the paper's cache-warm methodology).
func MeasureMatch(s *core.System, f Evaluator, pkt []byte) (float64, error) {
	if _, err := f.Match(pkt); err != nil {
		return 0, err
	}
	start := s.K.Clock.Cycles()
	if _, err := f.Match(pkt); err != nil {
		return 0, err
	}
	return s.K.Clock.Cycles() - start, nil
}
