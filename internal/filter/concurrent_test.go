package filter

import (
	"testing"
)

// TestFilterFleetMatchesAndScales runs the Figure 7 workload through
// filter fleets of 1 and 2 machines: every all-true packet must match
// on whichever machine filtered it, and two machines must have roughly
// twice the simulated filtering capacity of one.
func TestFilterFleetMatchesAndScales(t *testing.T) {
	pkt := MakeUDPPacket(1234, 53, 64)
	terms := TermsTrueFor(pkt, 4)
	pkts := make([][]byte, 40)
	for i := range pkts {
		pkts[i] = pkt
	}

	rates := make(map[int]float64)
	for _, workers := range []int{1, 2} {
		f, err := NewFleet(workers, terms)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.MatchAll(pkts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Matched != len(pkts) {
			t.Errorf("%d workers: matched %d of %d all-true packets", workers, res.Matched, len(pkts))
		}
		var served uint64
		for _, n := range res.PerWorkerPackets {
			served += n
		}
		if served != uint64(len(pkts)) {
			t.Errorf("%d workers: served %d of %d packets", workers, served, len(pkts))
		}
		rates[workers] = res.AggregatePktPerSec
	}
	if ratio := rates[2] / rates[1]; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2-machine filter fleet rate %.0f vs 1-machine %.0f: ratio %.2f, want ~2",
			rates[2], rates[1], ratio)
	}
}

// TestFilterFleetRejectsNonMatching checks that a fleet machine's
// filter still rejects, i.e. the concurrent path reuses the genuine
// mechanism rather than a constant.
func TestFilterFleetRejectsNonMatching(t *testing.T) {
	match := MakeUDPPacket(1234, 53, 64)
	terms := TermsTrueFor(match, 3)
	other := MakeUDPPacket(9, 9, 64)
	other[12], other[13] = 0x86, 0xDD // wrong ethertype: first term false

	f, err := NewFleet(2, terms)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.MatchAll([][]byte{match, other, match, other})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 2 {
		t.Errorf("matched %d of 4 packets, want 2", res.Matched)
	}
}
