package filter

import (
	"testing"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/cycles"
)

func sys(t *testing.T) *core.System {
	t.Helper()
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPacketShape(t *testing.T) {
	p := MakeUDPPacket(1234, 53, 64)
	if len(p) != 64 {
		t.Fatalf("len = %d", len(p))
	}
	if p[12] != 0x08 || p[13] != 0x00 || p[23] != 17 {
		t.Error("header fields wrong")
	}
	if got := uint16(p[36])<<8 | uint16(p[37]); got != 53 {
		t.Errorf("dst port = %d", got)
	}
}

func TestTermsAllTrue(t *testing.T) {
	p := MakeUDPPacket(1, 2, 64)
	in := bpf.NewInterp(cycles.NewClock(200))
	for n := 0; n <= 4; n++ {
		v, err := in.Run(bpf.Conjunction(TermsTrueFor(p, n)), p)
		if err != nil || v != 1 {
			t.Errorf("%d terms: verdict %d err %v", n, v, err)
		}
	}
}

func TestInterpretedAndCompiledAgree(t *testing.T) {
	s := sys(t)
	p := MakeUDPPacket(99, 53, 64)
	for n := 0; n <= 4; n++ {
		terms := TermsTrueFor(p, n)
		ifil, err := NewInterpreted(s, terms)
		if err != nil {
			t.Fatal(err)
		}
		cfil, err := NewCompiled(s, terms)
		if err != nil {
			t.Fatal(err)
		}
		im, err := ifil.Match(p)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := cfil.Match(p)
		if err != nil {
			t.Fatal(err)
		}
		if im != cm || !im {
			t.Errorf("%d terms: interp=%v compiled=%v, want both true", n, im, cm)
		}
		// A non-matching packet: both reject.
		if n > 0 {
			bad := MakeUDPPacket(99, 53, 64)
			bad[23] = 6 // TCP breaks the protocol term
			bad[12] = 0x86
			im, _ = ifil.Match(bad)
			cm, err = cfil.Match(bad)
			if err != nil {
				t.Fatal(err)
			}
			if im || cm {
				t.Errorf("%d terms: non-matching packet accepted (interp=%v compiled=%v)", n, im, cm)
			}
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	// The Figure 7 claims: BPF cost grows significantly with term
	// count; the compiled Palladium filter stays nearly flat; at 4
	// terms the compiled filter is more than twice as fast.
	s := sys(t)
	p := MakeUDPPacket(99, 53, 64)
	var bpfCost, palCost [5]float64
	for n := 0; n <= 4; n++ {
		terms := TermsTrueFor(p, n)
		ifil, _ := NewInterpreted(s, terms)
		cfil, err := NewCompiled(s, terms)
		if err != nil {
			t.Fatal(err)
		}
		if bpfCost[n], err = MeasureMatch(s, ifil, p); err != nil {
			t.Fatal(err)
		}
		if palCost[n], err = MeasureMatch(s, cfil, p); err != nil {
			t.Fatal(err)
		}
	}
	bpfSlope := (bpfCost[4] - bpfCost[0]) / 4
	palSlope := (palCost[4] - palCost[0]) / 4
	if bpfSlope < 100 {
		t.Errorf("BPF slope = %v cycles/term, expected substantial growth", bpfSlope)
	}
	if palSlope > bpfSlope/5 {
		t.Errorf("Palladium slope %v not clearly flatter than BPF %v", palSlope, bpfSlope)
	}
	if bpfCost[4] < 2*palCost[4] {
		t.Errorf("at 4 terms: BPF %v < 2x Palladium %v; paper reports >2x", bpfCost[4], palCost[4])
	}
	// Sanity on absolute bands (Figure 7's y-axis runs 0-1000).
	if palCost[0] < 142 || palCost[0] > 500 {
		t.Errorf("Palladium 0-term cost = %v, expected a few hundred cycles", palCost[0])
	}
	if bpfCost[4] > 1200 {
		t.Errorf("BPF 4-term cost = %v, expected under ~1000", bpfCost[4])
	}
}

func TestCompiledFilterIsConfined(t *testing.T) {
	// The compiled filter is a kernel extension: it cannot reach
	// outside its segment even though it runs in the kernel.
	s := sys(t)
	p := MakeUDPPacket(1, 2, 64)
	cfil, err := NewCompiled(s, TermsTrueFor(p, 2))
	if err != nil {
		t.Fatal(err)
	}
	// The segment descriptor bounds it; verify the segment's limit is
	// a strict subrange of the kernel space.
	if cfil.Seg.Limit >= 0x4000_0000 {
		t.Error("extension segment spans the whole kernel")
	}
	if !cfil.Seg.Code.IsNull() == false {
		t.Error("segment selectors missing")
	}
	if cfil.Seg.Code.RPL() != 1 {
		t.Errorf("filter runs at SPL %d, want 1", cfil.Seg.Code.RPL())
	}
}
