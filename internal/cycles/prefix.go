package cycles

import "math"

// Prefix is a worst-case charge prefix-sum table: Prefix[i] bounds the
// cycles instructions [0:i) of a compiled unit can charge. The CPU's
// block and trace tiers use one per unit to batch the per-instruction
// timer-deadline check: while the clock provably cannot reach the next
// tick before instruction j starts, the check is skipped wholesale.
type Prefix []float64

// Append extends the table by one instruction of worst-case charge wc.
// The receiver must already hold the leading zero (see NewPrefix).
func (p Prefix) Append(wc float64) Prefix {
	return append(p, p[len(p)-1]+wc)
}

// NewPrefix returns an empty table (just the leading zero), with room
// for n instructions.
func NewPrefix(n int) Prefix {
	p := make(Prefix, 1, n+1)
	return p
}

// Horizon returns the exclusive horizon h for deadline checks: units
// with index in [start, h) execute without a per-instruction deadline
// check. Unit start itself is always exempt (the caller just performed
// its check); a later unit j is exempt when the worst-case charge
// prefix proves the clock cannot have reached deadline before j begins
// (cyc + p[j] - p[start] < deadline). A return of limit means the rest
// of the range is check-free. p is monotonic, so the largest fitting
// index is found by binary search.
func (p Prefix) Horizon(cyc, deadline float64, start, limit int) int {
	slack := deadline - cyc + p[start]
	lo, hi := start, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p[mid] < slack {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo >= limit {
		return limit
	}
	return lo + 1
}

// BatchSafe reports whether every cost in the model is a non-negative
// multiple of 0.5 small enough that sums of any realistic number of
// charges stay below 2^52. Then every charge is an exact multiple of
// the ulp-safe quantum, so floating-point summation is associative
// over them: a trace may accumulate charges in a local and add the
// total to the clock at commit — interleaved in any order with live
// mid-trace charges (TLB-miss walks) — and the final clock reading is
// bit-identical to charging one by one. Both built-in models qualify;
// a hypothetical model that does not simply never enables the trace
// tier.
func (m *Model) BatchSafe() bool {
	for _, c := range m.costs {
		if !(c >= 0) || c >= 1<<40 {
			return false
		}
		if t := c * 2; t != math.Trunc(t) {
			return false
		}
	}
	return true
}
