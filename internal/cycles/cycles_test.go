package cycles

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if ALU.String() != "ALU" {
		t.Errorf("ALU.String() = %q", ALU.String())
	}
	if LcallGateInter.String() != "LcallGateInter" {
		t.Errorf("LcallGateInter.String() = %q", LcallGateInter.String())
	}
	if Kind(999).String() == "" {
		t.Error("out-of-range kind must still format")
	}
}

func TestMeasuredAnchors(t *testing.T) {
	m := Measured()
	// Anchors from the paper (Table 1 and section 5.1).
	if got := m.Cost(LcallGateInter); got != 75 {
		t.Errorf("lcall inter = %v cycles, paper measured 75", got)
	}
	if got := m.Cost(SegRegLoad); got != 12 {
		t.Errorf("segment register load = %v cycles, paper measured 12", got)
	}
	// Table 1 "Calling function" row: lret (inter) + call = 34.
	if got := m.Cost(LretInter) + m.Cost(CallNear); got != 34 {
		t.Errorf("lret+call = %v cycles, paper measured 34", got)
	}
	// Table 1 "Restoring state" row: two loads + ret = 7.
	if got := 2*m.Cost(Load) + m.Cost(RetNear); got != 7 {
		t.Errorf("restore = %v cycles, paper measured 7", got)
	}
}

func TestManualCheaperThanMeasured(t *testing.T) {
	meas, man := Measured(), Manual()
	for k := Kind(0); k < numKinds; k++ {
		if man.Cost(k) > meas.Cost(k) {
			t.Errorf("%s: manual %v > measured %v; the manual model excludes hazards and must not exceed measurements",
				k, man.Cost(k), meas.Cost(k))
		}
	}
}

func TestSegRegLoadManualRange(t *testing.T) {
	// Paper: "2 to 3 cycles according to Intel's architecture manual".
	c := Manual().Cost(SegRegLoad)
	if c < 2 || c > 3 {
		t.Errorf("manual segment register load = %v, want within [2,3]", c)
	}
}

func TestWithCost(t *testing.T) {
	base := Measured()
	mod := base.WithCost(LcallGateInter, 10)
	if mod.Cost(LcallGateInter) != 10 {
		t.Errorf("override not applied: %v", mod.Cost(LcallGateInter))
	}
	if base.Cost(LcallGateInter) != 75 {
		t.Errorf("WithCost mutated the receiver: %v", base.Cost(LcallGateInter))
	}
	if mod.Cost(CallNear) != base.Cost(CallNear) {
		t.Error("WithCost must preserve other kinds")
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock(200)
	if c.Cycles() != 0 {
		t.Fatal("fresh clock must read zero")
	}
	c.Add(100)
	c.Charge(Measured(), CallNear)
	if got := c.Cycles(); got != 103 {
		t.Errorf("cycles = %v, want 103", got)
	}
	if got := c.Micros(200); got != 1 {
		t.Errorf("200 cycles at 200MHz = %v us, want 1", got)
	}
	if c.CyclesPerMicro() != 200 {
		t.Errorf("CyclesPerMicro = %v", c.CyclesPerMicro())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Error("reset must zero the clock")
	}
}

func TestClockSpan(t *testing.T) {
	c := NewClock(200)
	c.Add(5)
	got := c.Span(func() { c.Add(37) })
	if got != 37 {
		t.Errorf("Span = %v, want 37", got)
	}
	if c.Cycles() != 42 {
		t.Errorf("clock after span = %v, want 42", got)
	}
}

func TestClockPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero mhz", func() { NewClock(0) })
	expectPanic("negative charge", func() { NewClock(1).Add(-1) })
	expectPanic("bad kind", func() { Measured().Cost(Kind(-1)) })
}

func TestClockAdditivityProperty(t *testing.T) {
	// Charging a+b equals charging a then b: the clock is a pure
	// accumulator.
	f := func(a, b uint16) bool {
		c1 := NewClock(200)
		c1.Add(float64(a) + float64(b))
		c2 := NewClock(200)
		c2.Add(float64(a))
		c2.Add(float64(b))
		return c1.Cycles() == c2.Cycles()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicrosRoundTripProperty(t *testing.T) {
	c := NewClock(200)
	f := func(n uint32) bool {
		cyc := float64(n)
		got := c.Micros(cyc) * c.CyclesPerMicro()
		diff := got - cyc
		if diff < 0 {
			diff = -diff
		}
		return diff <= cyc*1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
