// Package cycles provides the CPU cycle cost model used by the simulated
// machine. All performance results in this repository are expressed in
// simulated cycles accumulated on a Clock; wall-clock time plays no role.
//
// Two cost models are provided, mirroring the two columns of Table 1 in
// the paper:
//
//   - Measured: per-instruction costs calibrated against the Pentium
//     cycle-counter measurements the paper reports (these include the
//     pipeline-hazard effects the authors observed).
//   - Manual: the theoretical per-instruction costs from the Pentium
//     architecture manual (no hazards).
//
// Costs are float64 so that averaged sub-cycle effects (dual-issue
// pairing on the Pentium U/V pipes) can be expressed; totals are rounded
// only for reporting.
package cycles

import "fmt"

// Kind identifies a chargeable micro-architectural event. The CPU core
// maps every executed instruction (and every MMU event) to one Kind.
type Kind int

const (
	// ALU covers register-register arithmetic/logic (add, sub, and,
	// or, xor, cmp, test, inc, dec, shifts, neg, not).
	ALU Kind = iota
	// ALUMem is an ALU operation with one memory operand.
	ALUMem
	// Mul is integer multiply.
	Mul
	// MovRR is a register-to-register move.
	MovRR
	// MovImm is an immediate-to-register move.
	MovImm
	// Load is a memory-to-register move.
	Load
	// Store is a register/immediate-to-memory move.
	Store
	// Lea is address computation without a memory access.
	Lea
	// PushReg pushes a register.
	PushReg
	// PushImm pushes an immediate or a segment-selector literal.
	PushImm
	// PushMem pushes a value read from memory.
	PushMem
	// PopReg pops into a register.
	PopReg
	// PopMem pops into a memory location.
	PopMem
	// Xchg is a register-register exchange.
	Xchg
	// JmpNear is an unconditional near jump.
	JmpNear
	// JccTaken is a taken conditional branch.
	JccTaken
	// JccNotTaken is a not-taken conditional branch.
	JccNotTaken
	// CallNear is a near (intra-segment) call.
	CallNear
	// RetNear is a near return.
	RetNear
	// CallFarSame is a far call without a privilege change.
	CallFarSame
	// LcallGateInter is a far call through a call gate that raises the
	// privilege level, including the TSS stack switch. This is the
	// dominant cost of Palladium's extension-return path (~75 cycles
	// measured, Table 1).
	LcallGateInter
	// LretSame is a far return without a privilege change.
	LretSame
	// LretInter is a far return that lowers the privilege level
	// (Palladium's extension-call path, Table 1 "Calling function").
	LretInter
	// IntGate is an interrupt-gate entry to ring 0 (system call).
	IntGate
	// Iret is an interrupt return without a privilege change.
	Iret
	// IretInter is an interrupt return that lowers privilege.
	IretInter
	// SegRegLoad is a data-segment register load (cross-segment
	// reference overhead; 12 cycles measured, 2-3 per the manual,
	// paper section 5.1).
	SegRegLoad
	// TLBMiss is a two-level page-table walk on a TLB miss.
	TLBMiss
	// TLBFlushBase is the fixed cost of flushing the TLB (CR3 load).
	TLBFlushBase
	// FaultRaise is the hardware cost of raising an exception
	// (vectoring through the IDT, privilege switch to ring 0).
	FaultRaise
	// Nop is a no-op.
	Nop
	// Hlt is the halt instruction.
	Hlt
	numKinds
)

var kindNames = [...]string{
	ALU: "ALU", ALUMem: "ALUMem", Mul: "Mul", MovRR: "MovRR",
	MovImm: "MovImm", Load: "Load", Store: "Store", Lea: "Lea",
	PushReg: "PushReg", PushImm: "PushImm", PushMem: "PushMem",
	PopReg: "PopReg", PopMem: "PopMem", Xchg: "Xchg",
	JmpNear: "JmpNear", JccTaken: "JccTaken", JccNotTaken: "JccNotTaken",
	CallNear: "CallNear", RetNear: "RetNear", CallFarSame: "CallFarSame",
	LcallGateInter: "LcallGateInter", LretSame: "LretSame",
	LretInter: "LretInter", IntGate: "IntGate", Iret: "Iret",
	IretInter: "IretInter", SegRegLoad: "SegRegLoad", TLBMiss: "TLBMiss",
	TLBFlushBase: "TLBFlushBase", FaultRaise: "FaultRaise", Nop: "Nop",
	Hlt: "Hlt",
}

// String returns the symbolic name of the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Model maps event kinds to cycle costs.
type Model struct {
	Name  string
	costs [numKinds]float64
}

// Cost returns the cycle cost of one event of kind k.
func (m *Model) Cost(k Kind) float64 {
	if k < 0 || k >= numKinds {
		panic(fmt.Sprintf("cycles: invalid kind %d", int(k)))
	}
	return m.costs[k]
}

// NumKinds is the number of chargeable event kinds; CostTable slices
// are indexed by Kind.
const NumKinds = int(numKinds)

// CostTable returns the model's full cost table, indexed by Kind. The
// CPU's block compiler uses it to pre-resolve every instruction's
// charge at decode time, so the threaded execution tier charges the
// exact float the switch interpreter would have charged without
// re-consulting the model per instruction. The returned slice is a
// copy; mutating it does not change the model.
func (m *Model) CostTable() []float64 {
	t := make([]float64, numKinds)
	copy(t, m.costs[:])
	return t
}

// MaxCost returns the largest cost among the given kinds; the block
// compiler uses it to build worst-case charge bounds for instructions
// whose exact charge is data-dependent (taken vs not-taken branches,
// same- vs cross-privilege far transfers).
func (m *Model) MaxCost(kinds ...Kind) float64 {
	var max float64
	for _, k := range kinds {
		if c := m.Cost(k); c > max {
			max = c
		}
	}
	return max
}

// WithCost returns a copy of the model with kind k overridden; used by
// ablation benchmarks to explore sensitivity to individual costs.
func (m *Model) WithCost(k Kind, c float64) *Model {
	cp := *m
	cp.costs[k] = c
	return &cp
}

// Measured returns the cost model calibrated against the Pentium 200 MHz
// measurements in the paper (Table 1, section 5.1). Key anchors:
//
//	lcall through a gate with privilege raise  = 75 cycles
//	lret with privilege lowering               = 31 cycles
//	segment register load                      = 12 cycles
//
// so that the four Table-1 phases of a protected call sum to
// 26 + 34 + 75 + 7 = 142 cycles, and an intra-domain call to the same
// null function sums to 10.
func Measured() *Model {
	m := &Model{Name: "measured"}
	m.costs = [numKinds]float64{
		ALU: 1, ALUMem: 3, Mul: 10, MovRR: 1, MovImm: 1,
		Load: 2, Store: 4, Lea: 1,
		PushReg: 2, PushImm: 2, PushMem: 4, PopReg: 2, PopMem: 6,
		Xchg:    3,
		JmpNear: 3, JccTaken: 3, JccNotTaken: 1,
		CallNear: 3, RetNear: 3,
		CallFarSame: 22, LcallGateInter: 75, LretSame: 14, LretInter: 31,
		IntGate: 107, Iret: 24, IretInter: 82,
		SegRegLoad: 12,
		TLBMiss:    24, TLBFlushBase: 36,
		FaultRaise: 120,
		Nop:        1, Hlt: 1,
	}
	return m
}

// Manual returns the theoretical cost model from the Pentium
// architecture manual (the "Hardware" column of Table 1): no pipeline
// hazards, best-case cycle counts.
func Manual() *Model {
	m := &Model{Name: "manual"}
	m.costs = [numKinds]float64{
		ALU: 1, ALUMem: 2, Mul: 9, MovRR: 1, MovImm: 1,
		Load: 1.5, Store: 1, Lea: 1,
		PushReg: 1, PushImm: 1, PushMem: 2, PopReg: 1, PopMem: 3,
		Xchg:    2,
		JmpNear: 1, JccTaken: 1, JccNotTaken: 1,
		CallNear: 1, RetNear: 2,
		CallFarSame: 14, LcallGateInter: 44, LretSame: 9, LretInter: 21,
		IntGate: 71, Iret: 17, IretInter: 36,
		SegRegLoad: 2.5,
		TLBMiss:    13, TLBFlushBase: 10,
		FaultRaise: 60,
		Nop:        1, Hlt: 1,
	}
	return m
}

// Clock accumulates simulated cycles. A single Clock is shared by the
// CPU, the MMU and the kernel of one simulated machine so that hardware
// and software costs land on one timeline.
type Clock struct {
	cycles float64
	mhz    float64
}

// NewClock returns a clock for a CPU of the given frequency in MHz.
// The paper's testbed is a Pentium 200 MHz, so 200 reproduces its
// cycle-to-microsecond conversions.
func NewClock(mhz float64) *Clock {
	if mhz <= 0 {
		panic("cycles: clock frequency must be positive")
	}
	return &Clock{mhz: mhz}
}

// Add charges n cycles.
func (c *Clock) Add(n float64) {
	if n < 0 {
		panic("cycles: negative charge")
	}
	c.cycles += n
}

// Charge charges one event of kind k under model m.
func (c *Clock) Charge(m *Model, k Kind) { c.Add(m.Cost(k)) }

// Cycles returns the cycles accumulated so far.
func (c *Clock) Cycles() float64 { return c.cycles }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles = 0 }

// Clone copies the clock (reading and frequency) for a cloned machine.
func (c *Clock) Clone() *Clock { return &Clock{cycles: c.cycles, mhz: c.mhz} }

// SetCycles rewinds (or forwards) the clock to an absolute reading;
// used by machine snapshot/restore, never by simulated code.
func (c *Clock) SetCycles(v float64) { c.cycles = v }

// MHz returns the clock frequency.
func (c *Clock) MHz() float64 { return c.mhz }

// Micros converts a cycle count to microseconds at this clock's
// frequency.
func (c *Clock) Micros(cyc float64) float64 { return cyc / c.mhz }

// CyclesPerMicro returns the number of cycles in one microsecond.
func (c *Clock) CyclesPerMicro() float64 { return c.mhz }

// Span measures the cycles consumed by fn.
func (c *Clock) Span(fn func()) float64 {
	start := c.cycles
	fn()
	return c.cycles - start
}
