// Packetfilter example: the compiled in-kernel packet filter of
// Section 5.2. A filter rule (a conjunction of header-match terms) is
// compiled to native code, insmod'ed into an SPL-1 kernel extension
// segment, and invoked per packet through Palladium's protected call;
// the interpreted BPF baseline evaluates the same rule. The example
// prints the Figure-7 series.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/experiments"
	"repro/internal/filter"
)

func main() {
	sys, err := core.NewSystem(cycles.Measured())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.K.CreateProcess(); err != nil {
		log.Fatal(err)
	}

	// Build a 2-term rule (ethertype == IPv4 && protocol == UDP) and
	// run both evaluators over matching and non-matching traffic.
	pkt := filter.MakeUDPPacket(1234, 53, 64)
	terms := filter.TermsTrueFor(pkt, 2)
	compiled, err := filter.NewCompiled(sys, terms)
	if err != nil {
		log.Fatal(err)
	}
	interp, err := filter.NewInterpreted(sys, terms)
	if err != nil {
		log.Fatal(err)
	}
	tcp := filter.MakeUDPPacket(1234, 53, 64)
	tcp[23] = 6 // TCP instead of UDP
	for _, p := range [][]byte{pkt, tcp} {
		cm, err := compiled.Match(p)
		if err != nil {
			log.Fatal(err)
		}
		im, err := interp.Match(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packet proto=%d: compiled=%v interpreted=%v\n", p[23], cm, im)
	}
	fmt.Println()

	// The full Figure 7 series.
	pts, err := experiments.Figure7(4)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFigure7(os.Stdout, pts)
	last := pts[len(pts)-1]
	fmt.Printf("\nat %d terms the compiled filter is %.1fx faster than BPF\n",
		last.Terms, last.BPF/last.Palladium)
}
