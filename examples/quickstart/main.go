// Quickstart: boot a Palladium system, promote an extensible
// application, load an untrusted extension, and invoke it both ways —
// then watch the protection mechanism stop a misbehaving extension.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

func main() {
	// Boot the simulated machine (Pentium 200 MHz cost model) and the
	// mini-kernel, then create an extensible application.
	sys, err := core.NewSystem(cycles.Measured())
	if err != nil {
		log.Fatal(err)
	}
	app, err := core.NewApp(sys)
	if err != nil {
		log.Fatal(err)
	}
	// init_PL: promote to SPL 2; all writable pages drop to PPL 0.
	if err := app.InitPL(); err != nil {
		log.Fatal(err)
	}

	// An untrusted extension: increments its argument... and, in its
	// evil variant, tries to read application memory.
	ext := isa.MustAssemble("demo", `
		.global inc, snoop
		.text
		inc:
			mov eax, [esp+4]
			inc eax
			ret
		snoop:
			mov eax, [esp+4]
			mov eax, [eax]       ; read wherever the argument points
			ret
	`)
	h, err := app.SegDlopen(ext)
	if err != nil {
		log.Fatal(err)
	}
	inc, err := app.SegDlsym(h, "inc")
	if err != nil {
		log.Fatal(err)
	}

	// A protected call: Prepare -> lret -> extension -> lcall ->
	// AppCallGate, 142 cycles of overhead (Table 1).
	before := sys.Clock().Cycles()
	res, err := inc.Call(41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected inc(41) = %d (%.0f cycles total)\n", res, sys.Clock().Cycles()-before)

	// The same function called without protection, for comparison.
	raw, _ := app.Dlsym(h, "inc")
	before = sys.Clock().Cycles()
	res, err = app.CallUnprotected(raw, 41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected inc(41) = %d (%.0f cycles total)\n", res, sys.Clock().Cycles()-before)

	// Now the protection story: hide a secret in application memory
	// and let the extension try to read it.
	secret, err := app.P.Mmap(sys.K, 0, mem.PageSize, true, "secret")
	if err != nil {
		log.Fatal(err)
	}
	if err := app.WriteString(secret, "the app's private data"); err != nil {
		log.Fatal(err)
	}
	app.P.SignalHandler = func(si kernel.SignalInfo) {
		fmt.Printf("application received signal %d: %s\n", si.Sig, si.Reason)
	}
	snoop, err := app.SegDlsym(h, "snoop")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := snoop.Call(secret); errors.Is(err, core.ErrExtensionFault) {
		fmt.Println("extension aborted:", err)
	} else {
		log.Fatalf("protection failed: err=%v", err)
	}

	// The application survives and keeps working.
	if res, err = inc.Call(1); err != nil || res != 2 {
		log.Fatalf("post-fault call broken: %d, %v", res, err)
	}
	fmt.Println("application still healthy after the fault: inc(1) =", res)
}
