// Webserver example: the LibCGI application of Section 5.2. A CGI
// script runs as a Palladium user-level extension inside the web
// server's address space, invoked as a protected function call; the
// example prints a Table-3-style throughput comparison across the five
// execution models.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/experiments"
	"repro/internal/webserver"
)

func main() {
	// One request, narrated.
	sys, err := core.NewSystem(cycles.Measured())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := webserver.New(sys, 28)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []webserver.Model{
		webserver.Static, webserver.CGI, webserver.FastCGI,
		webserver.LibCGI, webserver.LibCGIProtected,
	} {
		before := sys.Clock().Cycles()
		status, err := srv.ServeRequest(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s status %d in %8.0f cycles\n", m, status, sys.Clock().Cycles()-before)
	}
	fmt.Println()

	// The full Table 3.
	rows, err := experiments.Table3([]uint32{28, 1024, 10 * 1024, 100 * 1024}, 100)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderTable3(os.Stdout, rows)
}
