// Command sandbox demonstrates the unified extension API: one
// extension object loaded under three isolation mechanisms by name,
// showing per-backend simulated invocation cost and what each
// mechanism does with the same out-of-bounds write — the user-level
// extension page-faults, the kernel extension trips its segment
// limit, and SFI silently confines the store into its region (having
// paid its overhead on every guarded instruction instead).
//
//	go run ./examples/sandbox
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/sandbox"
)

// probeSrc is the shared extension: arg 0 computes something benign;
// any other arg stores far outside every protection domain.
const probeSrc = `
	.global probe
	.text
	probe:
		mov eax, [esp+4]
		cmp eax, 0
		jne oob
		mov eax, 42
		ret
	oob:
		mov ecx, 134217728    ; 0x08000000
		mov [ecx], eax
		ret
`

func main() {
	obj := isa.MustAssemble("probe", probeSrc)
	fmt.Println("one object, three isolation mechanisms:")
	for _, backend := range []string{"palladium-user", "palladium-kernel", "sfi"} {
		// A fresh machine per backend keeps the comparison clean (an
		// aborted kernel segment would otherwise linger).
		host, err := sandbox.NewHost()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := host.Sys.K.CreateProcess(); err != nil {
			log.Fatal(err)
		}
		b, err := sandbox.Open(backend, host)
		if err != nil {
			log.Fatal(err)
		}
		ext, err := b.Load(obj.Clone(), sandbox.LoadOptions{Entry: "probe"})
		if err != nil {
			log.Fatal(err)
		}

		// Benign invocation: warm, then measure one call.
		if _, err := ext.Invoke(0); err != nil {
			log.Fatal(err)
		}
		before := ext.Stats().SimCycles
		v, err := ext.Invoke(0)
		if err != nil {
			log.Fatal(err)
		}
		cycles := ext.Stats().SimCycles - before

		// Out-of-bounds write: the taxonomy names what happened.
		verdict := "confined (no fault: SFI masked the address into its region)"
		if _, err := ext.Invoke(1); err != nil {
			var f *sandbox.Fault
			if !errors.As(err, &f) {
				log.Fatal(err)
			}
			verdict = fmt.Sprintf("fault: %v", f.Class)
		}
		fmt.Printf("  %-17s benign=%d  %7.0f cycles/call  out-of-bounds write -> %s\n",
			b.Name(), v, cycles, verdict)
	}
}
