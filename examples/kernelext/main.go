// Kernelext example: the safe kernel extension mechanism of Section
// 4.3. Untrusted modules are loaded into an SPL-1 extension segment
// inside the kernel address space; the segment limit confines them,
// kernel services are reachable only through the pre-defined int-0x81
// interface, data is shared through the well-known shared_area symbol,
// and a module that escapes its segment is aborted by the #GP handler
// without taking the kernel down.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func main() {
	sys, err := core.NewSystem(cycles.Measured())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.K.CreateProcess(); err != nil {
		log.Fatal(err)
	}
	// Expose one core kernel service (number 42: scale by 10).
	sys.K.RegisterKernelService(42, func(k *kernel.Kernel, p *kernel.Process, a1, _, _ uint32) uint32 {
		return a1 * 10
	})

	seg, err := sys.NewExtSegment("demo", 0)
	if err != nil {
		log.Fatal(err)
	}
	im, err := sys.Insmod(seg, isa.MustAssemble("goodmod", `
		.global checksum, viaservice
		.text
		checksum:                 ; sum the shared area bytes
			mov eax, [esp+4]      ; count
			mov ecx, shared_area
			mov edx, 0
		loop:
			cmp eax, 0
			je done
			movb ebx, [ecx]
			add edx, ebx
			inc ecx
			dec eax
			jmp loop
		done:
			mov eax, edx
			ret
		viaservice:               ; call kernel service 42
			mov eax, 42
			mov ebx, [esp+4]
			int 0x81
			ret
		.data
		.global shared_area
		shared_area: .space 64
	`))
	if err != nil {
		log.Fatal(err)
	}

	// Share data with the extension and invoke it.
	off, _ := im.Lookup("shared_area")
	if err := sys.WriteShared(seg, off, []byte{10, 20, 30}); err != nil {
		log.Fatal(err)
	}
	f, _ := sys.ExtensionFunction("checksum")
	sum, err := f.Invoke(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("checksum over shared area =", sum)

	svc, _ := sys.ExtensionFunction("viaservice")
	v, err := svc.Invoke(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel service result =", v)

	// Asynchronous invocations (Section 4.3): queue now, run later.
	// The queue is bounded; a full queue refuses the request with
	// core.ErrAsyncBackpressure instead of growing without limit.
	if err := f.InvokeAsync(3); err != nil {
		log.Fatal(err)
	}
	if err := f.InvokeAsync(3); err != nil {
		log.Fatal(err)
	}
	n, err := seg.RunPending()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("async requests completed =", n)

	// A malicious module in its own segment: the segment limit stops
	// it and the kernel aborts only that segment.
	badSeg, err := sys.NewExtSegment("bad", 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Insmod(badSeg, isa.MustAssemble("badmod", `
		.global escape
		.text
		escape:
			mov eax, [0x2000000]   ; beyond the 16 MB segment limit
			ret
	`)); err != nil {
		log.Fatal(err)
	}
	bad, _ := sys.ExtensionFunction("escape")
	if _, err := bad.Invoke(0); errors.Is(err, core.ErrKernelExtensionAborted) {
		fmt.Println("malicious module aborted:", err)
	} else {
		log.Fatalf("confinement failed: %v", err)
	}

	// The good module is untouched.
	if sum, err = f.Invoke(3); err != nil || sum != 60 {
		log.Fatalf("good module damaged: %d, %v", sum, err)
	}
	fmt.Println("good module still works after the abort: checksum =", sum)
}
