package sandbox

import (
	"errors"
	"fmt"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/verify"
)

// Class is the unified fault classification: the same escape attempt
// surfaces under the same class no matter which isolation mechanism
// caught it.
type Class int

const (
	// Unknown is a failure the taxonomy does not model (an internal
	// simulator error, for instance).
	Unknown Class = iota
	// SegmentViolation: the extension tripped a segment-level check —
	// a kernel extension writing or jumping past its segment limit, a
	// user extension forging an inter-segment transfer (the #GP
	// family).
	SegmentViolation
	// PageViolation: the extension tripped a page-level check — a
	// user extension touching a PPL-0 page of the application, a
	// kernel extension reaching an unmapped page inside its limit
	// (the #PF family).
	PageViolation
	// TimeLimit: the extension exceeded its per-invocation CPU-time
	// budget.
	TimeLimit
	// ValidationReject: the extension never ran — the mechanism's
	// static check refused it (a BPF program failing validation, the
	// SFI rewriter rejecting the object, a loader resolution
	// failure).
	ValidationReject
	// Backpressure: an asynchronous invocation was refused because
	// the extension's bounded request queue is full.
	Backpressure
	// Revoked: the extension was invoked after Release (or after its
	// segment was aborted by an earlier violation).
	Revoked
)

func (c Class) String() string {
	switch c {
	case SegmentViolation:
		return "segment-violation"
	case PageViolation:
		return "page-violation"
	case TimeLimit:
		return "time-limit"
	case ValidationReject:
		return "validation-reject"
	case Backpressure:
		return "backpressure"
	case Revoked:
		return "revoked"
	}
	return "unknown"
}

// Fault is the typed error every backend returns: a classification
// plus the untouched underlying error chain, so mechanism-specific
// sentinels (core.ErrExtensionFault, core.ErrKernelExtensionAborted,
// core.ErrTimeLimit, ...) and the hardware *mmu.Fault stay reachable
// through errors.Is / errors.As.
type Fault struct {
	// Class is the unified classification.
	Class Class
	// Backend and Op locate the failure ("palladium-kernel"/"invoke").
	Backend string
	Op      string
	// Hw is the hardware fault that triggered the violation, when one
	// exists (nil for validation rejects, backpressure, cost-model
	// time limits).
	Hw *mmu.Fault
	// RolledBack reports that the machine was restored to its
	// pre-call snapshot (WithTx).
	RolledBack bool
	// Report is the static verifier's structured evidence, present on
	// ValidationReject faults produced by the LoadOptions.Verify gate
	// (and on bpf validation rejects, whose classic checker reports
	// through the same type).
	Report *verify.Report

	cause error
}

// Error implements the error interface.
func (f *Fault) Error() string {
	s := fmt.Sprintf("sandbox: %s %s: %s", f.Backend, f.Op, f.Class)
	if f.RolledBack {
		s += " (rolled back)"
	}
	if f.cause != nil {
		s += ": " + f.cause.Error()
	}
	return s
}

// Unwrap exposes the mechanism's original error chain.
func (f *Fault) Unwrap() error { return f.cause }

// Cause returns the underlying error (the same value Unwrap exposes).
func (f *Fault) Cause() error { return f.cause }

// NewFault builds a typed Fault for layers that sit above the backend
// adapters but reuse the taxonomy — the serving tier's admission
// control, for instance, classifies a full request queue as
// Class Backpressure with the dispatcher's error as the cause.
func NewFault(class Class, backend, op string, cause error) *Fault {
	return &Fault{Class: class, Backend: backend, Op: op, cause: cause}
}

// errRevoked is the cause carried by Revoked faults on extensions
// released through the sandbox API itself.
var errRevoked = errors.New("sandbox: extension released")

// errNoStaging reports Stage on an extension without a staging area.
var errNoStaging = errors.New("sandbox: extension has no staging area")

// classify wraps a mechanism error in a *Fault. Errors that are
// already *Fault pass through untouched (so adapters composing other
// adapters do not double-wrap).
func classify(backend, op string, err error) error {
	if err == nil {
		return nil
	}
	var already *Fault
	if errors.As(err, &already) {
		return err
	}
	f := &Fault{Backend: backend, Op: op, cause: err}
	var hw *mmu.Fault
	switch {
	case errors.Is(err, core.ErrTimeLimit), errors.Is(err, bpf.ErrRunaway):
		f.Class = TimeLimit
	case errors.Is(err, core.ErrAsyncBackpressure):
		f.Class = Backpressure
	case errors.As(err, &hw):
		f.Hw = hw
		if hw.Kind == mmu.PF {
			f.Class = PageViolation
		} else {
			f.Class = SegmentViolation
		}
	case errors.Is(err, core.ErrKernelExtensionAborted) && op == "invoke":
		// An abort with no hardware fault and no time limit: the
		// segment was already dead when the call arrived.
		f.Class = Revoked
	default:
		if op == "load" {
			f.Class = ValidationReject
		}
	}
	if errors.Is(err, core.ErrKernelExtensionRolledBack) {
		f.RolledBack = true
	}
	return f
}

// rejectf builds a load-time ValidationReject fault directly.
func rejectf(backend string, format string, args ...any) error {
	return &Fault{
		Class: ValidationReject, Backend: backend, Op: "load",
		cause: fmt.Errorf(format, args...),
	}
}
