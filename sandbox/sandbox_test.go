package sandbox

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

const doubleSrc = `
	.global double
	.text
	double:
		mov eax, [esp+4]
		add eax, eax
		ret
`

const spinSrc = `
	.global spin
	.text
	spin:
		jmp spin
`

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Sys.K.CreateProcess(); err != nil {
		t.Fatal(err)
	}
	return h
}

func load(t *testing.T, h *Host, backend, src, entry string, opts LoadOptions) Extension {
	t.Helper()
	b, err := Open(backend, h)
	if err != nil {
		t.Fatal(err)
	}
	opts.Entry = entry
	ext, err := b.Load(isa.MustAssemble(entry, src), opts)
	if err != nil {
		t.Fatalf("%s load: %v", backend, err)
	}
	return ext
}

func TestRegistryHasSixBackends(t *testing.T) {
	want := []string{"bpf", "direct", "palladium-kernel", "palladium-user", "rpc", "sfi"}
	got := Backends()
	if len(got) != len(want) {
		t.Fatalf("backends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backends = %v, want %v", got, want)
		}
	}
	if _, err := Open("no-such-backend", newHost(t)); err == nil {
		t.Fatal("Open of unknown backend succeeded")
	}
}

func TestSameObjectSameResultAcrossNativeBackends(t *testing.T) {
	for _, backend := range []string{"direct", "palladium-user", "palladium-kernel", "sfi", "rpc"} {
		t.Run(backend, func(t *testing.T) {
			h := newHost(t)
			ext := load(t, h, backend, doubleSrc, "double", LoadOptions{})
			v, err := ext.Invoke(21)
			if err != nil {
				t.Fatal(err)
			}
			if v != 42 {
				t.Fatalf("double(21) = %d under %s", v, backend)
			}
			st := ext.Stats()
			if st.Invocations != 1 || st.Faults != 0 || st.SimCycles <= 0 {
				t.Errorf("stats = %+v", st)
			}
			if ext.Backend() != backend {
				t.Errorf("Backend() = %q", ext.Backend())
			}
		})
	}
}

func TestTimeLimitAcrossBackends(t *testing.T) {
	// The same runaway extension hits the TimeLimit class under every
	// native backend, whether the mechanism has a built-in budget
	// (palladium-*) or the adapter arms one (direct, sfi, rpc).
	for _, backend := range []string{"direct", "palladium-user", "palladium-kernel", "sfi", "rpc"} {
		t.Run(backend, func(t *testing.T) {
			h := newHost(t)
			ext := load(t, h, backend, spinSrc, "spin", LoadOptions{})
			_, err := ext.Invoke(0, WithTimeLimit(50_000))
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("err = %v, want *Fault", err)
			}
			if f.Class != TimeLimit {
				t.Fatalf("class = %v, want TimeLimit (%v)", f.Class, err)
			}
			if !errors.Is(err, core.ErrTimeLimit) {
				t.Errorf("underlying ErrTimeLimit not preserved: %v", err)
			}
		})
	}
}

func TestWithTxRollsBackUserFault(t *testing.T) {
	// A faulting palladium-user invocation under WithTx restores the
	// exact pre-call machine: the simulated clock (and with it every
	// other metric) rewinds to the snapshot.
	h := newHost(t)
	ext := load(t, h, "palladium-user", `
		.global bad
		.text
		bad:
			mov [0x08000000], eax
			ret
	`, "bad", LoadOptions{})
	before := h.Sys.K.Clock.Cycles()
	_, err := ext.Invoke(0, WithTx())
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !f.RolledBack {
		t.Errorf("fault not marked rolled back: %+v", f)
	}
	if got := h.Sys.K.Clock.Cycles(); got != before {
		t.Errorf("clock = %v after rollback, want %v", got, before)
	}
	// A rolled-back transaction contributes nothing to SimCycles (the
	// restore rewound the clock before the stats were taken).
	if st := ext.Stats(); st.SimCycles != 0 || st.Faults != 1 {
		t.Errorf("post-rollback stats = %+v, want 0 SimCycles and 1 fault", st)
	}
	// The extension stays usable: state was restored, not aborted.
	if _, err := ext.Invoke(0, WithTx()); err == nil {
		t.Error("second faulting call unexpectedly succeeded")
	}
}

func TestAsyncQueueBoundAndDrainOnRelease(t *testing.T) {
	// The kernel segment's bounded queue surfaces as Backpressure
	// through the adapter, and Release drains accepted work instead
	// of dropping it.
	h := newHost(t)
	ext := load(t, h, "palladium-kernel", `
		.global tally
		.text
		tally:
			mov eax, [counter]
			add eax, [esp+4]
			mov [counter], eax
			ret
		.data
		.global counter
		counter: .word 0
	`, "tally", LoadOptions{SharedSymbol: "counter", AsyncBound: 2})
	for i := 0; i < 2; i++ {
		if _, err := ext.Invoke(1, WithAsync()); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	_, err := ext.Invoke(1, WithAsync())
	var f *Fault
	if !errors.As(err, &f) || f.Class != Backpressure {
		t.Fatalf("overflow err = %v, want Backpressure fault", err)
	}
	if !errors.Is(err, core.ErrAsyncBackpressure) {
		t.Errorf("typed core backpressure error not preserved: %v", err)
	}
	if p := ext.Stats().Pending; p != 2 {
		t.Fatalf("pending = %d, want 2", p)
	}
	// Release drains both accepted requests before reclaiming.
	if err := ext.Release(); err != nil {
		t.Fatal(err)
	}
	st, ok := ext.(Stager)
	if !ok {
		t.Fatal("kernel extension lost its stager")
	}
	_ = st
	// After release the extension is revoked.
	_, err = ext.Invoke(1)
	if !errors.As(err, &f) || f.Class != Revoked {
		t.Fatalf("post-release err = %v, want Revoked fault", err)
	}
}

func TestKernelLoadFailureReclaimsSegment(t *testing.T) {
	// A Load that fails after Insmod (bad entry name) must not leak
	// the segment's Extension Function Table registrations.
	h := newHost(t)
	b, err := Open("palladium-kernel", h)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Load(isa.MustAssemble("double", doubleSrc), LoadOptions{Entry: "typo"})
	var f *Fault
	if !errors.As(err, &f) || f.Class != ValidationReject {
		t.Fatalf("load err = %v, want ValidationReject", err)
	}
	if _, ok := h.Sys.ExtensionFunction("double"); ok {
		t.Error("failed load left the module's entry points registered")
	}
	// A corrected retry works cleanly.
	ext, err := b.Load(isa.MustAssemble("double", doubleSrc), LoadOptions{Entry: "double"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ext.Invoke(21); err != nil || v != 42 {
		t.Errorf("retry invoke = %d, %v", v, err)
	}
}

func TestGenericAsyncQueueOnUserBackend(t *testing.T) {
	h := newHost(t)
	ext := load(t, h, "direct", doubleSrc, "double", LoadOptions{AsyncBound: 3})
	for i := 0; i < 3; i++ {
		if _, err := ext.Invoke(uint32(i), WithAsync()); err != nil {
			t.Fatal(err)
		}
	}
	var f *Fault
	if _, err := ext.Invoke(9, WithAsync()); !errors.As(err, &f) || f.Class != Backpressure {
		t.Fatalf("overflow err = %v, want Backpressure", err)
	}
	q, ok := ext.(AsyncQueue)
	if !ok {
		t.Fatal("direct extension does not queue")
	}
	n, err := q.Drain()
	if err != nil || n != 3 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	if ext.Stats().Invocations != 3 {
		t.Errorf("drained invocations = %d", ext.Stats().Invocations)
	}
}

func TestSFIConfinesOutOfBoundsWrite(t *testing.T) {
	// The mechanism difference the taxonomy must NOT paper over: the
	// same out-of-bounds store that faults under Palladium is silently
	// confined by SFI's address masking — no fault, overhead paid up
	// front instead.
	h := newHost(t)
	ext := load(t, h, "sfi", `
		.global oob
		.text
		oob:
			mov ecx, 0x08000000
			mov eax, 7
			mov [ecx], eax
			ret
	`, "oob", LoadOptions{})
	if _, err := ext.Invoke(0); err != nil {
		t.Fatalf("sfi-confined write faulted: %v", err)
	}
}
