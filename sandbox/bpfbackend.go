package sandbox

import (
	"errors"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/isa"
)

func init() {
	Register("bpf", func(h *Host) (Backend, error) {
		return &bpfBackend{h: h}, nil
	})
}

// bpfBackend is the interpretation baseline (Section 2.1): the
// in-kernel BPF virtual machine. Its whole protection story is the
// static validator plus the interpreter's own correctness, which the
// taxonomy reflects — unsafe programs are ValidationReject at load
// time and a validated program cannot violate a segment or page at
// all. The cost structure survives too: every virtual instruction
// pays dispatch, which is why Figure 7's interpreted curve grows with
// the number of filter terms.
type bpfBackend struct{ h *Host }

// Name implements Backend.
func (b *bpfBackend) Name() string { return "bpf" }

// Load implements Backend. The program arrives in opts.BPF; obj is
// ignored (interpretation loads bytecode, not native objects).
func (b *bpfBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	_ = obj
	if len(opts.BPF) == 0 {
		return nil, rejectf("bpf", "no BPF program (LoadOptions.BPF)")
	}
	prog := opts.BPF
	// The classic BPF validator reports through the same verify.Report
	// type as the ISA verifier; it always runs (it is the mechanism's
	// entire protection story), with or without LoadOptions.Verify.
	rep := prog.Verify()
	if err := prog.Validate(); err != nil {
		fErr := classify("bpf", "load", err)
		var f *Fault
		if errors.As(fErr, &f) {
			f.Report = rep
		}
		return nil, fErr
	}
	in := bpf.NewInterp(b.h.Sys.K.Clock)
	e := &extBase{h: b.h, backend: "bpf", entry: "bpf", bound: opts.AsyncBound, report: rep}
	var staged []byte
	e.stage = func(bts []byte) error {
		staged = append(staged[:0], bts...)
		return nil
	}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		clock := b.h.Sys.K.Clock
		start := clock.Cycles()
		v, err := in.Run(prog, staged)
		if err == nil && cfg.TimeLimit > 0 && clock.Cycles()-start > cfg.TimeLimit {
			// The interpreter is a cost model: it cannot be preempted
			// mid-run, so the budget is enforced on the priced span.
			return 0, core.ErrTimeLimit
		}
		return v, err
	}
	return e, nil
}
