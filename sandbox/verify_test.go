package sandbox

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bpf"
	"repro/internal/isa"
	"repro/internal/verify"
)

// verifyReporter is the accessor every adapter's extension exposes.
type verifyReporter interface {
	VerifyReport() *verify.Report
}

// TestVerifyGateRejectsEscapes runs PR-2-style escape programs
// through the load-time verifier gate of each native-code backend:
// with LoadOptions.Verify the load is refused (ValidationReject
// carrying the structured report) before the program ever runs, while
// the same object still loads fine without the opt-in — the escape is
// then only caught by the runtime mechanism.
func TestVerifyGateRejectsEscapes(t *testing.T) {
	absWrite := fmt.Sprintf(`
		.global escape
		.text
		escape:
			mov eax, 1
			mov [%d], eax
			ret
	`, int32(0x0040_3000))
	indirectJmp := fmt.Sprintf(`
		.global escape
		.text
		escape:
			mov eax, %d
			jmp eax
	`, int32(-0x3FFF_F000)) // 0xC0001000 as the assembler's signed immediate
	forgedLret := `
		.global escape
		.text
		escape:
			push 0x08
			push 0
			lret
	`
	cases := []struct {
		name    string
		backend string
		src     string
	}{
		{"paluser abs write", "palladium-user", absWrite},
		{"paluser forged lret", "palladium-user", forgedLret},
		{"kernel abs write", "palladium-kernel", absWrite},
		{"kernel indirect jmp", "palladium-kernel", indirectJmp},
		{"direct abs write", "direct", absWrite},
		// The sfi rewriter masks the store, so the write variants
		// verify as confined; control flow is what SFI does not guard
		// and the verifier still rejects.
		{"sfi indirect jmp", "sfi", indirectJmp},
		{"sfi forged lret", "sfi", forgedLret},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHost(t)
			b, err := Open(tc.backend, h)
			if err != nil {
				t.Fatal(err)
			}
			obj := isa.MustAssemble("escape", tc.src)
			_, err = b.Load(obj, WithVerify(LoadOptions{Entry: "escape"}))
			var f *Fault
			if !errors.As(err, &f) || f.Class != ValidationReject {
				t.Fatalf("verified load = %v, want ValidationReject", err)
			}
			if f.Report == nil || f.Report.Status != verify.Rejected {
				t.Fatalf("fault report = %+v, want a Rejected verify.Report", f.Report)
			}
			if len(f.Report.Violations) == 0 {
				t.Fatal("rejected report carries no violations")
			}
			// Without the opt-in the object loads: the escape is the
			// runtime mechanism's problem (that path is pinned by the
			// adversarial fault suite).
			ext, err := b.Load(obj, LoadOptions{Entry: "escape"})
			if err != nil {
				t.Fatalf("unverified load: %v", err)
			}
			if rep := ext.(verifyReporter).VerifyReport(); rep != nil {
				t.Fatalf("unverified load has report %+v, want nil", rep)
			}
		})
	}
}

// hotLoopSrc is the tier-2 elision workload: a counted compute loop
// whose two scratch accesses are anchored data operands. It verifies
// Clean with elidable facts under every layout.
const hotLoopSrc = `
	.global hotloop
	.text
	hotloop:
		mov eax, 0
		mov ecx, 1000
	loop:
		add eax, ecx
		mov [scratch], eax
		mov ebx, [scratch]
		dec ecx
		jne loop
		ret
	.data
	scratch: .long 0
`

// TestVerifyGateAcceptsHotLoop: the paper-shaped workload verifies
// Clean, runs correctly, and its annotated loads actually elide
// segment-limit re-validations in tier 2.
func TestVerifyGateAcceptsHotLoop(t *testing.T) {
	for _, backend := range []string{"palladium-kernel", "palladium-user"} {
		t.Run(backend, func(t *testing.T) {
			h := newHost(t)
			ext := load(t, h, backend, hotLoopSrc, "hotloop", WithVerify(LoadOptions{}))
			rep := ext.(verifyReporter).VerifyReport()
			if rep == nil || rep.Status != verify.Clean {
				t.Fatalf("report = %+v, want Clean", rep)
			}
			if rep.Elidable != 2 {
				t.Fatalf("elidable = %d, want 2", rep.Elidable)
			}
			before := h.Sys.K.Machine.MMU.ElidedChecks()
			v, err := ext.Invoke(0)
			if err != nil {
				t.Fatalf("invoke: %v", err)
			}
			if v != 500500 {
				t.Fatalf("result = %d, want 500500", v)
			}
			elided := h.Sys.K.Machine.MMU.ElidedChecks() - before
			if elided == 0 {
				t.Fatal("verified hot loop elided no segment checks")
			}
		})
	}
}

// TestVerifyElisionMetricsIdentical is the differential soundness
// check at the adapter level: the same workload on two fresh hosts,
// loaded with and without verification, must produce bit-identical
// results and simulated cycles — elision skips re-validation work the
// cost model never charged for, so only the host-side elided counter
// may differ.
func TestVerifyElisionMetricsIdentical(t *testing.T) {
	run := func(verifyOn bool) (uint32, float64, uint64) {
		h := newHost(t)
		opts := LoadOptions{}
		if verifyOn {
			opts = WithVerify(opts)
		}
		ext := load(t, h, "palladium-kernel", hotLoopSrc, "hotloop", opts)
		start := h.Sys.K.Clock.Cycles()
		v, err := ext.Invoke(0)
		if err != nil {
			t.Fatalf("invoke (verify=%v): %v", verifyOn, err)
		}
		return v, h.Sys.K.Clock.Cycles() - start, h.Sys.K.Machine.MMU.ElidedChecks()
	}
	v1, cyc1, el1 := run(false)
	v2, cyc2, el2 := run(true)
	if v1 != v2 {
		t.Fatalf("results differ: %d vs %d", v1, v2)
	}
	if cyc1 != cyc2 {
		t.Fatalf("simulated cycles differ: %v vs %v", cyc1, cyc2)
	}
	if el1 != 0 {
		t.Fatalf("unverified run elided %d checks, want 0", el1)
	}
	if el2 == 0 {
		t.Fatal("verified run elided no checks")
	}
}

// TestVerifyGateSFIMaskedStoreClean: after the rewriter inserts the
// and/or mask sequence, the verifier proves the guarded store lands in
// the sandbox region (with its guard slack) — the SFI load verifies
// clean rather than being rejected for the raw out-of-bounds address.
func TestVerifyGateSFIMaskedStoreClean(t *testing.T) {
	h := newHost(t)
	src := `
		.global poke
		.text
		poke:
			mov ecx, 305419896   ; 0x12345678, far outside the region
			mov [ecx], eax
			ret
	`
	ext := load(t, h, "sfi", src, "poke", WithVerify(LoadOptions{}))
	rep := ext.(verifyReporter).VerifyReport()
	if rep == nil || !rep.Accepted() {
		t.Fatalf("report = %+v, want accepted", rep)
	}
	if rep.Status != verify.Clean {
		t.Fatalf("status = %v, want Clean (mask proves confinement); unproven %v", rep.Status, rep.Unproven)
	}
	if _, err := ext.Invoke(0); err != nil {
		t.Fatalf("invoke: %v", err)
	}
}

// TestBPFReportRouted: the bpf backend reports through the same
// verify.Report type — on both the accept and the reject side —
// whether or not Verify was requested.
func TestBPFReportRouted(t *testing.T) {
	h := newHost(t)
	b, err := Open("bpf", h)
	if err != nil {
		t.Fatal(err)
	}
	good := bpf.Conjunction([]bpf.Term{{Offset: 0, Size: 1, Value: 7}})
	ext, err := b.Load(nil, LoadOptions{BPF: good})
	if err != nil {
		t.Fatal(err)
	}
	rep := ext.(verifyReporter).VerifyReport()
	if rep == nil || rep.Status != verify.Clean || rep.Backend != "bpf" {
		t.Fatalf("accept-side report = %+v, want Clean bpf report", rep)
	}
	bad := bpf.Program{{Op: bpf.LdImm, K: 1}} // no return
	_, err = b.Load(nil, LoadOptions{BPF: bad})
	var f *Fault
	if !errors.As(err, &f) || f.Class != ValidationReject {
		t.Fatalf("bad program load = %v, want ValidationReject", err)
	}
	if f.Report == nil || f.Report.Status != verify.Rejected {
		t.Fatalf("reject-side report = %+v, want Rejected", f.Report)
	}
}
