package sandbox

import (
	"repro/internal/isa"
	"repro/internal/rpc"
)

func init() {
	Register("rpc", func(h *Host) (Backend, error) {
		return &rpcBackend{h: h}, nil
	})
}

// rpcBackend is the process-isolation baseline (Table 2's "Linux
// RPC" column): the extension lives in a separate server process and
// every invocation is a socket round trip on the same machine. The
// adapter executes the extension for real (an ordinary in-process
// call in the server's role) and then charges the full loopback RPC
// path — stub overhead, socket syscalls, TCP processing, copies,
// wakeups and the context switches whose CR3 loads flush the TLB —
// so an invocation costs exactly "the same work plus IPC", the
// structural gap Section 5.1 prices at two orders of magnitude.
type rpcBackend struct{ h *Host }

// Name implements Backend.
func (b *rpcBackend) Name() string { return "rpc" }

// Load implements Backend.
func (b *rpcBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	if opts.Entry == "" {
		return nil, rejectf("rpc", "no entry symbol")
	}
	// The server process runs the object as an ordinary user-level
	// call, so a verified load is judged against the user layout.
	obj, rep, err := verifyGate("rpc", obj, opts, userVerifyLayout("rpc", obj, opts))
	if err != nil {
		return nil, err
	}
	a, err := b.h.App()
	if err != nil {
		return nil, classify("rpc", "load", err)
	}
	handle, err := a.SegDlopen(obj)
	if err != nil {
		return nil, classify("rpc", "load", err)
	}
	addr, err := a.Dlsym(handle, opts.Entry)
	if err != nil {
		return nil, classify("rpc", "load", err)
	}
	loop, err := rpc.NewLoopback(b.h.Sys.K)
	if err != nil {
		return nil, classify("rpc", "load", err)
	}
	reqBytes, respBytes := opts.ReqBytes, opts.RespBytes
	if reqBytes <= 0 {
		reqBytes = 4
	}
	if respBytes <= 0 {
		respBytes = 4
	}
	e := &extBase{h: b.h, backend: "rpc", entry: opts.Entry, bound: opts.AsyncBound, report: rep}
	if err := bindUserShared(e, a, handle, opts); err != nil {
		return nil, err
	}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		v, err := callUnprotectedLimited(b.h, a, addr, arg, cfg)
		if err != nil {
			return 0, err
		}
		loop.Call(reqBytes, respBytes, 0)
		return v, nil
	}
	e.doRelease = func() error { return a.SegDlclose(handle) }
	return e, nil
}
