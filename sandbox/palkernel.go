package sandbox

import (
	"repro/internal/core"
	"repro/internal/isa"
)

func init() {
	Register("palladium-kernel", func(h *Host) (Backend, error) {
		return &palKernelBackend{h: h}, nil
	})
}

// palKernelBackend is Palladium's kernel-level mechanism (Section
// 4.3): the object is insmod'ed into a dedicated SPL-1 extension
// segment carved out of the kernel's 3-4 GB range; the segment limit
// check confines it and a general-protection fault aborts offenders.
// WithTx upgrades an invocation to the PR-3 snapshot transaction
// (InvokeTx); WithAsync queues onto the segment's bounded request
// queue.
type palKernelBackend struct{ h *Host }

// Name implements Backend.
func (b *palKernelBackend) Name() string { return "palladium-kernel" }

// Load implements Backend.
func (b *palKernelBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	if opts.Entry == "" {
		return nil, rejectf("palladium-kernel", "no entry symbol")
	}
	obj, rep, err := verifyGate("palladium-kernel", obj, opts, kernelVerifyLayout(obj, opts))
	if err != nil {
		return nil, err
	}
	s := b.h.Sys
	seg, err := s.NewExtSegment(obj.Name, opts.SegmentSize)
	if err != nil {
		return nil, classify("palladium-kernel", "load", err)
	}
	im, err := s.Insmod(seg, obj)
	if err != nil {
		_ = seg.Release() // reclaim the segment and any partial registrations
		return nil, classify("palladium-kernel", "load", err)
	}
	fn, ok := s.ExtensionFunction(opts.Entry)
	if !ok {
		_ = seg.Release()
		return nil, rejectf("palladium-kernel", "entry %q not exported by %s", opts.Entry, obj.Name)
	}
	if opts.AsyncBound > 0 {
		seg.QueueBound = opts.AsyncBound
	}
	e := newKernelExt(b.h, seg, fn)
	e.report = rep
	if opts.SharedSymbol != "" {
		off, ok := im.Lookup(opts.SharedSymbol)
		if !ok {
			_ = seg.Release()
			return nil, rejectf("palladium-kernel", "shared symbol %q missing from %s", opts.SharedSymbol, obj.Name)
		}
		e.sharedArg = off
		e.stage = func(b []byte) error { return s.WriteShared(seg, off, b) }
	}
	return e, nil
}

// AdoptKernel wraps an existing Extension Function Table entry as a
// palladium-kernel extension; the invocation path is exactly
// KernelExtensionFunc.Invoke's (InvokeTx under WithTx).
func AdoptKernel(s *core.System, fn *core.KernelExtensionFunc) Extension {
	return newKernelExt(HostFor(s), fn.Seg, fn)
}

// kernelExt is extBase plus the segment handle (exposed so workloads
// and tests can inspect the confining descriptors).
type kernelExt struct {
	extBase
	seg *core.ExtSegment
}

// Segment returns the SPL-1 extension segment confining this
// extension.
func (e *kernelExt) Segment() *core.ExtSegment { return e.seg }

func newKernelExt(h *Host, seg *core.ExtSegment, fn *core.KernelExtensionFunc) *kernelExt {
	e := &kernelExt{seg: seg}
	e.extBase = extBase{
		h: h, backend: "palladium-kernel", entry: fn.Name,
		ownTx:      true,
		ownAsync:   fn.InvokeAsync,
		ownDrain:   seg.RunPending,
		ownPending: seg.Pending,
		doRelease:  seg.Release,
	}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		k := h.Sys.K
		if cfg.TimeLimit > 0 {
			old := k.ExtTimeLimit
			k.ExtTimeLimit = cfg.TimeLimit
			defer func() { k.ExtTimeLimit = old }()
		}
		if cfg.Tx {
			return fn.InvokeTx(arg)
		}
		return fn.Invoke(arg)
	}
	return e
}
