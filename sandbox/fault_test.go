package sandbox

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/sfi"
)

// faultProbe is one failure mode exercised under one backend.
type faultProbe struct {
	name string
	// run loads and/or invokes whatever triggers the failure and
	// returns its error.
	run  func(t *testing.T, h *Host) error
	want Class
	// hwKind, when set, requires the *Fault to carry a hardware fault
	// of this kind.
	hwKind mmu.FaultKind
	wantHw bool
}

// loadErr loads src under the backend and returns the load error.
func loadErr(backend, src, entry string, opts LoadOptions) func(*testing.T, *Host) error {
	return func(t *testing.T, h *Host) error {
		b, err := Open(backend, h)
		if err != nil {
			t.Fatal(err)
		}
		opts.Entry = entry
		var obj *isa.Object
		if src != "" {
			obj = isa.MustAssemble("probe", src)
		}
		_, err = b.Load(obj, opts)
		return err
	}
}

// invokeErr loads src and returns the error of one invocation.
func invokeErr(backend, src, entry string, arg uint32, opts ...InvokeOption) func(*testing.T, *Host) error {
	return func(t *testing.T, h *Host) error {
		ext := load(t, h, backend, src, entry, LoadOptions{})
		_, err := ext.Invoke(arg, opts...)
		return err
	}
}

// oobHighSrc writes far above the 3 GB user limit: a segment-limit
// violation at any user-level privilege.
const oobHighSrc = `
	.global probe
	.text
	probe:
		mov ecx, 2013265920   ; 0x78000000
		add ecx, ecx          ; 0xF0000000, beyond the user segments
		mov [ecx], eax
		ret
`

// oobUserSrc touches an unmapped user address: a page-level fault.
const oobUserSrc = `
	.global probe
	.text
	probe:
		mov ecx, 134217728    ; 0x08000000, never mapped
		mov [ecx], eax
		ret
`

// jmpOutSrc jumps to an unmapped user address: SFI guards data, not
// control flow that lands outside mapped code, so the fetch faults.
const jmpOutSrc = `
	.global probe
	.text
	probe:
		mov ecx, 134217728
		jmp ecx
`

// TestFaultTaxonomy: the same four failure modes — segment violation,
// page violation, time-limit overrun, validation reject — surface as
// the same sandbox.Fault class under every backend that can express
// them.
func TestFaultTaxonomy(t *testing.T) {
	probes := map[string][]faultProbe{
		"direct": {
			{name: "segment violation", run: invokeErr("direct", oobHighSrc, "probe", 0),
				want: SegmentViolation, wantHw: true, hwKind: mmu.GP},
			{name: "page violation", run: invokeErr("direct", oobUserSrc, "probe", 0),
				want: PageViolation, wantHw: true, hwKind: mmu.PF},
			{name: "time limit", run: invokeErr("direct", spinSrc, "spin", 0, WithTimeLimit(40_000)),
				want: TimeLimit},
			{name: "validation reject", run: loadErr("direct", doubleSrc, "missing_entry", LoadOptions{}),
				want: ValidationReject},
		},
		"palladium-user": {
			{name: "segment violation", run: invokeErr("palladium-user", oobHighSrc, "probe", 0),
				want: SegmentViolation, wantHw: true, hwKind: mmu.GP},
			{name: "page violation", run: invokeErr("palladium-user", oobUserSrc, "probe", 0),
				want: PageViolation, wantHw: true, hwKind: mmu.PF},
			{name: "time limit", run: invokeErr("palladium-user", spinSrc, "spin", 0, WithTimeLimit(40_000)),
				want: TimeLimit},
			{name: "validation reject", run: loadErr("palladium-user", doubleSrc, "missing_entry", LoadOptions{}),
				want: ValidationReject},
		},
		"palladium-kernel": {
			{name: "segment violation", run: invokeErr("palladium-kernel", `
				.global probe
				.text
				probe:
					mov ecx, 1073741824   ; 0x40000000, far past the segment limit
					mov [ecx], eax
					ret
			`, "probe", 0), want: SegmentViolation, wantHw: true, hwKind: mmu.GP},
			{name: "page violation", run: invokeErr("palladium-kernel", `
				.global probe
				.text
				probe:
					mov ecx, 32768        ; 0x8000: inside the limit, never mapped
					mov [ecx], eax
					ret
			`, "probe", 0), want: PageViolation, wantHw: true, hwKind: mmu.PF},
			{name: "time limit", run: invokeErr("palladium-kernel", spinSrc, "spin", 0, WithTimeLimit(40_000)),
				want: TimeLimit},
			{name: "validation reject", run: loadErr("palladium-kernel", doubleSrc, "missing_entry", LoadOptions{}),
				want: ValidationReject},
		},
		"sfi": {
			{name: "page violation", run: invokeErr("sfi", jmpOutSrc, "probe", 0),
				want: PageViolation, wantHw: true, hwKind: mmu.PF},
			{name: "time limit", run: invokeErr("sfi", spinSrc, "spin", 0, WithTimeLimit(40_000)),
				want: TimeLimit},
			{name: "validation reject: dedicated register used", run: loadErr("sfi", `
				.global probe
				.text
				probe:
					mov edi, 1
					ret
			`, "probe", LoadOptions{}), want: ValidationReject},
			{name: "validation reject: region not a power of two", run: loadErr("sfi", doubleSrc, "double",
				LoadOptions{SFI: sfi.Config{DataBase: 0x2000_0000, DataSize: 0x3000}}),
				want: ValidationReject},
		},
		"bpf": {
			{name: "validation reject: no program", run: loadErr("bpf", "", "", LoadOptions{}),
				want: ValidationReject},
			{name: "validation reject: jump out of bounds", run: loadErr("bpf", "", "", LoadOptions{
				BPF: bpf.Program{{Op: bpf.JEq, K: 1, Jt: 9, Jf: 9}, {Op: bpf.RetK, K: 0}}}),
				want: ValidationReject},
			{name: "validation reject: no trailing return", run: loadErr("bpf", "", "", LoadOptions{
				BPF: bpf.Program{{Op: bpf.LdImm, K: 1}}}),
				want: ValidationReject},
			{name: "time limit", run: func(t *testing.T, h *Host) error {
				b, err := Open("bpf", h)
				if err != nil {
					t.Fatal(err)
				}
				ext, err := b.Load(nil, LoadOptions{BPF: bpf.Program{{Op: bpf.RetK, K: 1}}})
				if err != nil {
					t.Fatal(err)
				}
				_, err = ext.Invoke(0, WithTimeLimit(1))
				return err
			}, want: TimeLimit},
		},
	}
	for backend, cases := range probes {
		t.Run(backend, func(t *testing.T) {
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					err := tc.run(t, newHost(t))
					var f *Fault
					if !errors.As(err, &f) {
						t.Fatalf("err = %v, want *sandbox.Fault", err)
					}
					if f.Class != tc.want {
						t.Fatalf("class = %v, want %v (%v)", f.Class, tc.want, err)
					}
					if f.Backend != backend {
						t.Errorf("fault backend = %q, want %q", f.Backend, backend)
					}
					if tc.wantHw {
						if f.Hw == nil {
							t.Fatalf("fault carries no hardware fault: %v", err)
						}
						if f.Hw.Kind != tc.hwKind {
							t.Errorf("hw kind = %v, want %v", f.Hw.Kind, tc.hwKind)
						}
					}
				})
			}
		})
	}
}

// TestAdversarialFaultsPreservedThroughAdapters re-runs the PR-2
// adversarial escape suite's canonical attacks through the sandbox
// adapters and asserts the adapters change nothing: the same
// SignalInfo is delivered with the same hardware fault, the
// mechanism sentinels still match errors.Is, the protected bytes are
// untouched and the victim keeps serving.
func TestAdversarialFaultsPreservedThroughAdapters(t *testing.T) {
	const secretPattern = "\xDE\xAD\xBE\xEF\x50\x4C\x44\x4D"

	t.Run("spl3 write to hidden PPL-0 page", func(t *testing.T) {
		h := newHost(t)
		a, err := h.App()
		if err != nil {
			t.Fatal(err)
		}
		k := h.Sys.K
		secret, err := a.P.Mmap(k, 0, mem.PageSize, true, "secret")
		if err != nil {
			t.Fatal(err)
		}
		if err := a.P.Touch(k, secret, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteMem(secret, []byte(secretPattern)); err != nil {
			t.Fatal(err)
		}
		var signals []string
		var hwFaults []*mmu.Fault
		a.P.SignalHandler = func(si kernel.SignalInfo) {
			signals = append(signals, si.Reason)
			hwFaults = append(hwFaults, si.Fault)
		}

		ext := load(t, h, "palladium-user", fmt.Sprintf(`
			.global escape
			.text
			escape:
				mov eax, 1
				mov [%d], eax
				ret
		`, int32(secret)), "escape", LoadOptions{})
		_, err = ext.Invoke(0)

		if !errors.Is(err, core.ErrExtensionFault) {
			t.Fatalf("ErrExtensionFault not preserved: %v", err)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Class != PageViolation {
			t.Fatalf("err = %v, want PageViolation fault", err)
		}
		if len(signals) != 1 || signals[0] != "user extension protection violation" {
			t.Fatalf("signals = %v, want exactly the PR-2 SIGSEGV reason", signals)
		}
		hw := hwFaults[0]
		if hw == nil || hw.Kind != mmu.PF || hw.Linear != secret || hw.CPL != 3 {
			t.Fatalf("delivered fault = %+v, want PF at the secret from CPL 3", hw)
		}
		if f.Hw != hw {
			t.Errorf("sandbox fault carries %+v, signal carried %+v — not the same fault", f.Hw, hw)
		}
		got, err := a.ReadMem(secret, len(secretPattern))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != secretPattern {
			t.Errorf("secret after attack = % x, want % x", got, secretPattern)
		}
		// The application still works: a benign extension loaded and
		// invoked after the abort succeeds.
		benign := load(t, h, "palladium-user", doubleSrc, "double", LoadOptions{})
		if v, err := benign.Invoke(21); err != nil || v != 42 {
			t.Errorf("post-attack protected call = %d, %v; want 42", v, err)
		}
	})

	t.Run("spl1 write past the segment limit", func(t *testing.T) {
		h := newHost(t)
		s := h.Sys
		victim, err := s.NewExtSegment("victim", 0)
		if err != nil {
			t.Fatal(err)
		}
		vim, err := s.Insmod(victim, isa.MustAssemble("victim", `
			.global vget
			.text
			vget:
				mov eax, [vstash]
				ret
			.data
			.global vstash
			vstash: .word 90
		`))
		if err != nil {
			t.Fatal(err)
		}
		stashOff, ok := vim.Lookup("vstash")
		if !ok {
			t.Fatal("vstash not found")
		}

		b, err := Open("palladium-kernel", h)
		if err != nil {
			t.Fatal(err)
		}
		attacker, err := b.Load(isa.MustAssemble("attacker", `
			.global attack
			.text
			attack:
				mov eax, 255
				mov [escape_off], eax
				ret
			.data
			.global escape_off
			escape_off: .word 0
		`), LoadOptions{Entry: "attack"})
		if err != nil {
			t.Fatal(err)
		}
		// Overwrite the attack's operand with the victim's stash as
		// seen from the attacker's segment: beyond its limit by
		// construction. Simpler: attack through an absolute store
		// rebuilt against the live layout.
		aseg := attacker.(interface{ Segment() *core.ExtSegment }).Segment()
		escapeOff := victim.Base + stashOff - aseg.Base
		if escapeOff <= aseg.Limit {
			t.Fatalf("setup: escape offset %#x within attacker limit %#x", escapeOff, aseg.Limit)
		}
		attacker2, err := b.Load(isa.MustAssemble("attacker2", fmt.Sprintf(`
			.global attack2
			.text
			attack2:
				mov eax, 255
				mov [%d], eax
				ret
		`, int32(escapeOff))), LoadOptions{Entry: "attack2"})
		if err != nil {
			t.Fatal(err)
		}

		_, err = attacker2.Invoke(0)
		if !errors.Is(err, core.ErrKernelExtensionAborted) {
			t.Fatalf("ErrKernelExtensionAborted not preserved: %v", err)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Class != SegmentViolation {
			t.Fatalf("err = %v, want SegmentViolation fault", err)
		}
		if f.Hw == nil || f.Hw.Kind != mmu.GP || f.Hw.CPL != 1 {
			t.Fatalf("hw fault = %+v, want #GP from SPL 1", f.Hw)
		}

		// The victim's byte never changed and the victim still runs.
		vget, ok := s.ExtensionFunction("vget")
		if !ok {
			t.Fatal("victim was deregistered by the attacker's abort")
		}
		if got, err := vget.Invoke(0); err != nil || got != 90 {
			t.Errorf("victim stash after attack = %d, %v; want 90", got, err)
		}
		// The attacker is revoked: its entry point is gone.
		if _, ok := s.ExtensionFunction("attack2"); ok {
			t.Error("aborted extension still registered")
		}
		var f2 *Fault
		if _, err := attacker2.Invoke(0); !errors.As(err, &f2) || f2.Class != Revoked {
			t.Errorf("post-abort invoke = %v, want Revoked", err)
		}
	})
}
