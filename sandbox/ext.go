package sandbox

import (
	"repro/internal/core"
	"repro/internal/verify"
)

// extBase carries the behavior every adapter shares: stats
// accounting, the generic bounded async queue, transactional rollback
// via whole-system snapshots, and release bookkeeping. Adapters plug
// in the mechanism-specific pieces.
type extBase struct {
	h       *Host
	backend string
	entry   string

	// doInvoke runs one synchronous invocation under cfg (the adapter
	// applies TimeLimit itself; Tx too when ownTx is set).
	doInvoke func(arg uint32, cfg *InvokeConfig) (uint32, error)
	// doRelease reclaims mechanism resources (nil: nothing to do).
	doRelease func() error
	// stage/sharedArg implement Stager when non-nil.
	stage     func(b []byte) error
	sharedArg uint32
	// ownTx: doInvoke implements WithTx natively (palladium-kernel's
	// InvokeTx), so the base must not wrap it in a second snapshot.
	ownTx bool
	// ownAsync/ownDrain/ownPending delegate WithAsync to a native
	// queue (the kernel segment's); nil selects the generic queue.
	ownAsync   func(arg uint32) error
	ownDrain   func() (int, error)
	ownPending func() int

	// report is the static verifier's accept-side evidence when the
	// extension was loaded with LoadOptions.Verify (nil otherwise).
	report *verify.Report

	queue    []uint32
	bound    int
	released bool
	stats    Stats

	// cfg is the per-invocation option scratch, reused across calls:
	// it is handed to doInvoke by pointer (a dynamic call), which
	// would force a fresh InvokeConfig to escape on every invocation —
	// extensions are single-caller (machine-owned), so one scratch
	// keeps the steady-state Invoke path allocation-free.
	cfg InvokeConfig
}

// Backend implements Extension.
func (e *extBase) Backend() string { return e.backend }

// VerifyReport returns the static verifier's report for this
// extension, or nil when it was loaded without LoadOptions.Verify.
func (e *extBase) VerifyReport() *verify.Report { return e.report }

// Stats implements Extension.
func (e *extBase) Stats() Stats {
	st := e.stats
	st.Pending = e.Pending()
	return st
}

// Stage implements Stager.
func (e *extBase) Stage(b []byte) error {
	if e.stage == nil {
		return &Fault{Class: ValidationReject, Backend: e.backend, Op: "stage",
			cause: errNoStaging}
	}
	return e.stage(b)
}

// SharedArg implements Stager.
func (e *extBase) SharedArg() uint32 { return e.sharedArg }

// Invoke implements Extension.
func (e *extBase) Invoke(arg uint32, opts ...InvokeOption) (uint32, error) {
	e.cfg = InvokeConfig{}
	cfg := &e.cfg
	for _, o := range opts {
		o(cfg)
	}
	if e.released {
		return 0, &Fault{Class: Revoked, Backend: e.backend, Op: "invoke", cause: errRevoked}
	}
	if cfg.Async {
		if e.ownAsync != nil {
			if err := e.ownAsync(arg); err != nil {
				e.stats.Faults++
				return 0, classify(e.backend, "invoke", err)
			}
			return 0, nil
		}
		bound := e.bound
		if bound <= 0 {
			bound = core.DefaultAsyncQueueBound
		}
		if len(e.queue) >= bound {
			e.stats.Faults++
			return 0, &Fault{Class: Backpressure, Backend: e.backend, Op: "invoke",
				cause: core.ErrAsyncBackpressure}
		}
		e.queue = append(e.queue, arg)
		return 0, nil
	}
	return e.call(arg, cfg)
}

func (e *extBase) call(arg uint32, cfg *InvokeConfig) (uint32, error) {
	clock := e.h.Sys.K.Clock
	var snap *core.SystemSnapshot
	if cfg.Tx && !e.ownTx {
		snap = e.h.Sys.Snapshot()
		defer snap.Release()
	}
	start := clock.Cycles()
	v, err := e.doInvoke(arg, cfg)
	e.stats.Invocations++
	if err == nil {
		e.stats.SimCycles += clock.Cycles() - start
		return v, nil
	}
	e.stats.Faults++
	rolledBack := false
	if snap != nil {
		e.h.Sys.Restore(snap)
		rolledBack = true
	}
	// Accounted after the restore: a rolled-back transaction rewinds
	// the clock to the snapshot, so it contributes nothing — matching
	// the kernel backend's native InvokeTx.
	e.stats.SimCycles += clock.Cycles() - start
	err = classify(e.backend, "invoke", err)
	if f, ok := err.(*Fault); ok && rolledBack {
		f.RolledBack = true
	}
	return 0, err
}

// Drain implements AsyncQueue: queued requests run to completion in
// FIFO order (results discarded, as with the paper's queued
// packet-filter work).
func (e *extBase) Drain() (int, error) {
	if e.ownDrain != nil {
		return e.ownDrain()
	}
	done := 0
	for len(e.queue) > 0 {
		arg := e.queue[0]
		e.queue = e.queue[1:]
		e.cfg = InvokeConfig{}
		if _, err := e.call(arg, &e.cfg); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// Pending implements AsyncQueue.
func (e *extBase) Pending() int {
	if e.ownPending != nil {
		return e.ownPending()
	}
	return len(e.queue)
}

// Release implements Extension: drain-on-release — accepted async
// work always runs before the extension's resources are reclaimed.
func (e *extBase) Release() error {
	if e.released {
		return nil
	}
	if _, err := e.Drain(); err != nil {
		return err
	}
	e.released = true
	if e.doRelease != nil {
		return e.doRelease()
	}
	return nil
}
