package sandbox

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	Register("direct", func(h *Host) (Backend, error) {
		return &directBackend{h: h}, nil
	})
}

// directBackend is the unprotected baseline every table compares
// against: the extension object is dlopen'ed into the application and
// invoked with an ordinary intra-domain call, bypassing every
// Palladium transfer stub. It provides no isolation — a stray access
// faults the application itself — which is exactly the point of the
// comparison.
type directBackend struct{ h *Host }

// Name implements Backend.
func (b *directBackend) Name() string { return "direct" }

// Load implements Backend.
func (b *directBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	if opts.Entry == "" {
		return nil, rejectf("direct", "no entry symbol")
	}
	// The direct backend enforces nothing at run time, so a verified
	// load is judged against the user-level layout its siblings share:
	// what the verifier proves safe there holds a fortiori here.
	obj, rep, err := verifyGate("direct", obj, opts, userVerifyLayout("direct", obj, opts))
	if err != nil {
		return nil, err
	}
	a, err := b.h.App()
	if err != nil {
		return nil, classify("direct", "load", err)
	}
	handle, err := a.SegDlopen(obj)
	if err != nil {
		return nil, classify("direct", "load", err)
	}
	addr, err := a.Dlsym(handle, opts.Entry)
	if err != nil {
		return nil, classify("direct", "load", err)
	}
	e := &extBase{h: b.h, backend: "direct", entry: opts.Entry, bound: opts.AsyncBound, report: rep}
	if err := bindUserShared(e, a, handle, opts); err != nil {
		return nil, err
	}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		return callUnprotectedLimited(b.h, a, addr, arg, cfg)
	}
	e.doRelease = func() error { return a.SegDlclose(handle) }
	return e, nil
}

// AdoptDirect wraps an already-loaded plain function as a
// direct-backend extension without re-running any load step: the
// invocation path (and therefore every simulated metric) is exactly
// App.CallUnprotected's. Consumers that load once and dispatch many
// ways — the web server's LibCGI script, Table 2's strrev — adopt
// instead of re-loading.
func AdoptDirect(a *core.App, entry string, fnAddr uint32) Extension {
	h := HostFor(a.S)
	h.AdoptApp(a)
	e := &extBase{h: h, backend: "direct", entry: entry}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		return callUnprotectedLimited(h, a, fnAddr, arg, cfg)
	}
	return e
}

// callUnprotectedLimited is CallUnprotected plus an adapter-armed
// per-invocation time limit: the mechanism itself has none (it is the
// unprotected baseline), so the limit is only armed when an
// invocation asks for one — leaving the un-optioned path bit-identical
// to the raw call.
func callUnprotectedLimited(h *Host, a *core.App, addr, arg uint32, cfg *InvokeConfig) (uint32, error) {
	if cfg.TimeLimit > 0 {
		k := h.Sys.K
		deadline := k.Clock.Cycles() + cfg.TimeLimit
		cancel := k.OnTimerTick(func() error {
			if k.Clock.Cycles() > deadline {
				return core.ErrTimeLimit
			}
			return nil
		})
		defer cancel()
	}
	return a.CallUnprotected(addr, arg)
}

// bindUserShared resolves the staging area for a user-level backend:
// a module data symbol when SharedSymbol is set, else a fresh
// page-rounded shared allocation when SharedBytes is set.
func bindUserShared(e *extBase, a *core.App, handle int, opts LoadOptions) error {
	switch {
	case opts.SharedSymbol != "":
		addr, err := a.Dlsym(handle, opts.SharedSymbol)
		if err != nil {
			return classify(e.backend, "load", err)
		}
		e.sharedArg = addr
	case opts.SharedBytes > 0:
		n := (opts.SharedBytes + mem.PageMask) &^ uint32(mem.PageMask)
		addr, err := a.SharedAlloc(n)
		if err != nil {
			return classify(e.backend, "load", err)
		}
		e.sharedArg = addr
	default:
		return nil
	}
	addr := e.sharedArg
	e.stage = func(b []byte) error { return a.WriteMem(addr, b) }
	return nil
}
