package sandbox

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/verify"
)

// Differential soundness of verified-safe check elision: for every
// generated program the static verifier accepts, loading it with
// verification (annotated operands, tier-2 segment checks elided)
// must be observationally identical to loading it without — same
// result, same error, bit-identical simulated cycles — and a program
// the verifier calls Clean must additionally run without any fault.
// The generator emits structurally valid extensions whose memory
// offsets, loop counts and register choices come from the fuzz input,
// so it produces Clean, Guarded and Rejected programs alike.

// genRegs deliberately excludes esp/ebp: the generator emits balanced
// prologues itself and random stack-pointer arithmetic would only
// produce rejects, starving the accept-side comparison.
var genRegs = []string{"eax", "ebx", "ecx", "edx", "esi", "edi"}

// genExtensionSrc builds a deterministic extension from the fuzz
// bytes. The shape is always: optional scratch stores/loads with
// data-relative offsets (some past the symbol's end — those reject),
// optional arithmetic, an optional counted loop, then `mov eax, ...;
// ret`. Every program assembles; acceptance is the verifier's call.
func genExtensionSrc(data []byte) string {
	b := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	var sb strings.Builder
	sb.WriteString(".global fuzzext\n.text\nfuzzext:\n")
	n := 2 + b(0)%6
	for i := 0; i < n; i++ {
		r := genRegs[b(2*i+1)%len(genRegs)]
		r2 := genRegs[b(2*i+2)%len(genRegs)]
		// Offsets reach to 96 while the scratch array holds 64 bytes:
		// roughly a third of memory ops are statically out of bounds.
		off := (b(2*i+3) * 4) % 96
		switch b(2*i) % 6 {
		case 0:
			fmt.Fprintf(&sb, "\tmov %s, %d\n", r, b(2*i+4)%1000)
		case 1:
			fmt.Fprintf(&sb, "\tadd %s, %s\n", r, r2)
		case 2:
			fmt.Fprintf(&sb, "\tmov [scratch+%d], %s\n", off, r)
		case 3:
			fmt.Fprintf(&sb, "\tmov %s, [scratch+%d]\n", r, off)
		case 4:
			fmt.Fprintf(&sb, "\tpush %s\n\tpop %s\n", r, r2)
		case 5:
			fmt.Fprintf(&sb, "\tand %s, 63\n", r)
		}
	}
	if b(n)%2 == 0 {
		// A counted loop; the latch register is rewritten just before,
		// so the trip count is provable unless a body op clobbers it.
		count := 1 + b(n+1)%50
		body := genRegs[b(n+2)%len(genRegs)]
		fmt.Fprintf(&sb, "\tmov ecx, %d\nloop:\n\tadd %s, 3\n\tmov [scratch], %s\n\tdec ecx\n\tjne loop\n", count, body, body)
	}
	sb.WriteString("\tmov eax, 7\n\tret\n.data\nscratch: .space 64\n")
	return sb.String()
}

// soundRun loads src under palladium-kernel (verified or not) and
// invokes it once, returning the observable outcome.
func soundRun(t *testing.T, src string, verified bool) (v uint32, errStr string, cycles float64, elided uint64, rep *verify.Report, loadErr error) {
	t.Helper()
	h := newHost(t)
	b, err := Open("palladium-kernel", h)
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Entry: "fuzzext"}
	if verified {
		opts = WithVerify(opts)
	}
	ext, err := b.Load(isa.MustAssemble("fuzzext", src), opts)
	if err != nil {
		return 0, "", 0, 0, nil, err
	}
	if verified {
		rep = ext.(interface{ VerifyReport() *verify.Report }).VerifyReport()
	}
	start := h.Sys.K.Clock.Cycles()
	v, ierr := ext.Invoke(0)
	if ierr != nil {
		errStr = ierr.Error()
	}
	return v, errStr, h.Sys.K.Clock.Cycles() - start, h.Sys.K.Machine.MMU.ElidedChecks(), rep, nil
}

// checkVerifySound is the property both the fuzz target and the
// regression-seed replay assert.
func checkVerifySound(t *testing.T, data []byte) {
	src := genExtensionSrc(data)
	vv, verr, vcyc, velided, rep, vload := soundRun(t, src, true)
	if vload != nil {
		// Rejected: the gate must have produced a structured report,
		// and the unverified twin must still load (rejection is the
		// verifier's conservatism, not a loader failure).
		f, ok := vload.(*Fault)
		if !ok || f.Class != ValidationReject || f.Report == nil {
			t.Fatalf("verified load failed without a reject report: %v\nprogram:\n%s", vload, src)
		}
		if _, _, _, _, _, uload := soundRun(t, src, false); uload != nil {
			t.Fatalf("unverified twin fails to load: %v\nprogram:\n%s", uload, src)
		}
		return
	}
	uv, uerr, ucyc, uelided, _, uload := soundRun(t, src, false)
	if uload != nil {
		t.Fatalf("unverified load failed: %v\nprogram:\n%s", uload, src)
	}
	if uelided != 0 {
		t.Fatalf("unverified run elided %d checks\nprogram:\n%s", uelided, src)
	}
	if vv != uv || verr != uerr || vcyc != ucyc {
		t.Fatalf("elision changed observable behavior:\nverified:   v=%d err=%q cycles=%v (elided %d)\nunverified: v=%d err=%q cycles=%v\nprogram:\n%s",
			vv, verr, vcyc, velided, uv, uerr, ucyc, src)
	}
	if rep.Status == verify.Clean && verr != "" {
		t.Fatalf("Clean program faulted at runtime: %q\nprogram:\n%s", verr, src)
	}
}

// FuzzVerifySound drives the generator from fuzz input.
func FuzzVerifySound(f *testing.F) {
	for _, seed := range verifySoundSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkVerifySound(t, data)
	})
}

// verifySoundSeeds are the checked-in regression seeds: shapes that
// exercised distinct verifier paths (clean straight-line, clean
// counted loop, guarded loop whose latch register is clobbered in the
// body, out-of-bounds scratch offsets, push/pop balance).
var verifySoundSeeds = []string{
	"",
	"\x00",
	"\x02\x01\x05\x09\x03",
	"\x03\x04\x17\x20\x09\x14",
	"\x04\x02\x06\x01\x00\x00\x02",
	"\x05\xff\x80\x7f\x40\x20\x10\x08",
	"\x02\x03\x19\x02\x03\x19\x02\x03\x19",
	"\x01\x01\x01\x01\x01\x01\x01\x01",
	"\x00\x02\x00\x04\x00\x06\x00\x08\x00",
	"\xf0\x0d\xca\xfe\xba\xbe\x00\x01\x02\x03",
}

// TestVerifySoundRegressionSeeds replays the corpus deterministically
// under plain `go test` (the fuzz engine only replays it under
// -fuzz).
func TestVerifySoundRegressionSeeds(t *testing.T) {
	for i, seed := range verifySoundSeeds {
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			checkVerifySound(t, []byte(seed))
		})
	}
}
