package sandbox

import (
	"repro/internal/isa"
	"repro/internal/sfi"
)

func init() {
	Register("sfi", func(h *Host) (Backend, error) {
		return &sfiBackend{h: h}, nil
	})
}

// DefaultSFIRegion is the sandbox region used when LoadOptions.SFI is
// zero: the same 64 KB region the SFI overhead ablation uses.
var DefaultSFIRegion = sfi.Config{DataBase: 0x2000_0000, DataSize: 0x0001_0000}

// sfiBackend is the software-fault-isolation baseline (Section 2.1,
// Wahbe et al.): the object is statically rewritten so every guarded
// memory operand is masked into a dedicated power-of-two region, then
// runs as an ordinary unprotected call. The characteristic trade-off
// survives the adapter: the rewriter's refusals surface as
// ValidationReject at load time, and an out-of-bounds write does not
// fault at all — it is silently confined to the region, the overhead
// having been paid on every guarded instruction instead.
type sfiBackend struct{ h *Host }

// Name implements Backend.
func (b *sfiBackend) Name() string { return "sfi" }

// Load implements Backend.
func (b *sfiBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	if opts.Entry == "" {
		return nil, rejectf("sfi", "no entry symbol")
	}
	cfg := opts.SFI
	if cfg.DataSize == 0 {
		cfg.DataBase, cfg.DataSize = DefaultSFIRegion.DataBase, DefaultSFIRegion.DataSize
	}
	rewritten, _, err := sfi.Rewrite(obj, cfg)
	if err != nil {
		return nil, classify("sfi", "load", err)
	}
	// Verify the *rewritten* object: the mask sequences the rewriter
	// inserted are precisely what lets the interval domain prove the
	// guarded accesses land in the region.
	rewritten, rep, err := verifyGate("sfi", rewritten, opts, sfiVerifyLayout(cfg, rewritten, opts))
	if err != nil {
		return nil, err
	}
	a, err := b.h.App()
	if err != nil {
		return nil, classify("sfi", "load", err)
	}
	// Map the sandbox region once per host (extensions may share it;
	// SFI offers no protection between co-resident modules, exactly
	// like modules sharing a Palladium segment).
	key := uint64(cfg.DataBase)<<32 | uint64(cfg.DataSize)
	if b.h.sfiRegions == nil {
		b.h.sfiRegions = make(map[uint64]bool)
	}
	if !b.h.sfiRegions[key] {
		k := b.h.Sys.K
		if _, err := a.P.MmapPPL1(k, cfg.DataBase, cfg.DataSize, true, "sandbox.sfi-region"); err != nil {
			return nil, classify("sfi", "load", err)
		}
		if err := a.P.Touch(k, cfg.DataBase, cfg.DataSize); err != nil {
			return nil, classify("sfi", "load", err)
		}
		b.h.sfiRegions[key] = true
	}
	handle, err := a.SegDlopen(rewritten)
	if err != nil {
		return nil, classify("sfi", "load", err)
	}
	addr, err := a.Dlsym(handle, opts.Entry)
	if err != nil {
		return nil, classify("sfi", "load", err)
	}
	e := &extBase{h: b.h, backend: "sfi", entry: opts.Entry, bound: opts.AsyncBound, report: rep}

	// Staging: with read guards on, the rewritten code reads through
	// masked addresses, so the stager writes each byte where the
	// masked access will actually look; otherwise bytes go to the
	// plain shared address (reads are unguarded in write-only mode).
	shared := cfg.DataBase
	if opts.SharedSymbol != "" {
		if shared, err = a.Dlsym(handle, opts.SharedSymbol); err != nil {
			return nil, classify("sfi", "load", err)
		}
	}
	e.sharedArg = shared
	if cfg.GuardReads {
		mask := cfg.DataSize - 1
		base := cfg.DataBase
		e.stage = func(bts []byte) error {
			for i, v := range bts {
				masked := ((shared + uint32(i)) & mask) | base
				if err := a.WriteMem(masked, []byte{v}); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		e.stage = func(bts []byte) error { return a.WriteMem(shared, bts) }
	}

	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		return callUnprotectedLimited(b.h, a, addr, arg, cfg)
	}
	e.doRelease = func() error { return a.SegDlclose(handle) }
	return e, nil
}
