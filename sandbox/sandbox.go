// Package sandbox is the unified extension programming model over
// every isolation mechanism the reproduction implements. The paper's
// argument is a *comparison* of isolation mechanisms — Palladium's
// combined segmentation+paging protection against software fault
// isolation, interpretation, and process-based RPC — yet each
// mechanism historically exposed its own incompatible API
// (App.SegDlsym→ProtectedFunc.Call, System.NewExtSegment→
// KernelExtensionFunc.Invoke, sfi.Rewrite, bpf.Interp.Run,
// rpc.Loopback.Call). This package puts one compartment model over
// all of them:
//
//	host := sandbox.HostFor(system)
//	b, _ := sandbox.Open("palladium-kernel", host)
//	ext, _ := b.Load(obj, sandbox.LoadOptions{Entry: "f"})
//	v, err := ext.Invoke(arg)          // err is a *sandbox.Fault
//
// Six backends self-register under well-known names:
//
//	direct            unprotected in-process call (the paper's baseline)
//	palladium-user    SPL-3 user-level extension (paging+segmentation)
//	palladium-kernel  SPL-1 kernel extension segment (segmentation)
//	sfi               software fault isolation (address masking)
//	bpf               in-kernel interpretation
//	rpc               process isolation over loopback RPC
//
// Every backend maps its native failure modes onto the same typed
// *Fault taxonomy (segment violation, page violation, time limit,
// validation reject, ...), while preserving the underlying error
// chain: errors.Is(err, core.ErrExtensionFault) and
// errors.As(err, &mmuFault) keep working through the adapters, and
// the simulated cycle accounting of an invocation is bit-identical to
// the mechanism-specific API it wraps.
package sandbox

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/sfi"
)

// Backend is one isolation mechanism: it loads extension objects into
// its protection domain and hands back uniformly invocable Extensions.
type Backend interface {
	// Name returns the backend's registry name.
	Name() string
	// Load places an extension object under this backend's isolation
	// mechanism. Load failures are *Fault errors (usually
	// ValidationReject: the object was refused before it ever ran).
	Load(obj *isa.Object, opts LoadOptions) (Extension, error)
}

// Extension is one loaded extension: a sandboxed function invocable
// with a 4-byte argument and a 4-byte result, the calling convention
// every mechanism in the paper shares (larger data travels through
// staged shared areas; see Stager).
type Extension interface {
	// Backend returns the name of the backend that loaded this
	// extension.
	Backend() string
	// Invoke runs the extension. A protection violation, time-limit
	// overrun or backpressure refusal surfaces as a *Fault (the
	// underlying mechanism's error chain is preserved inside it).
	Invoke(arg uint32, opts ...InvokeOption) (uint32, error)
	// Release retires the extension: queued asynchronous work is
	// drained (never silently dropped), then the mechanism's
	// resources are reclaimed. Invoking a released extension fails
	// with a Revoked fault.
	Release() error
	// Stats reports Go-side accounting; reading it charges no
	// simulated cycles.
	Stats() Stats
}

// Stager is implemented by extensions that stage input bytes into
// their extension-visible shared area before an invocation — the
// kernel copying packet headers into a filter segment, a web server
// staging CGI meta-variables.
type Stager interface {
	// Stage writes b into the extension's staging area.
	Stage(b []byte) error
	// SharedArg returns the argument value that addresses the staged
	// area in the extension's view (a linear address for user-level
	// backends, a segment-relative offset for kernel segments).
	SharedArg() uint32
}

// AsyncQueue is implemented by extensions that support WithAsync
// queueing.
type AsyncQueue interface {
	// Drain runs every queued request to completion and reports how
	// many ran.
	Drain() (int, error)
	// Pending reports the queued request count.
	Pending() int
}

// Stats is an extension's Go-side accounting.
type Stats struct {
	// Invocations counts completed Invoke calls (successful or
	// faulted), excluding async enqueues.
	Invocations uint64
	// Faults counts Invoke calls that returned an error.
	Faults uint64
	// SimCycles is the simulated cycles consumed by this extension's
	// invocations (rolled-back transactions contribute nothing).
	SimCycles float64
	// Pending is the current async queue depth.
	Pending int
}

// Host is the machine a backend attaches to: a booted Palladium
// system plus, for user-level backends, the extensible application
// that hosts their extensions. The application is created lazily so
// kernel-only hosts (e.g. the Figure 7 harness) keep their exact boot
// sequence.
type Host struct {
	Sys *core.System

	app *core.App
	// sfiRegions tracks regions the sfi backend already mapped, keyed
	// by base|size, so two sfi loads sharing a region don't double-map.
	sfiRegions map[uint64]bool
}

// HostFor wraps an already-booted system.
func HostFor(s *core.System) *Host { return &Host{Sys: s} }

// NewHost boots a fresh Palladium system under the measured cost
// model and wraps it.
func NewHost() (*Host, error) {
	s, err := core.NewSystem(cycles.Measured())
	if err != nil {
		return nil, err
	}
	return HostFor(s), nil
}

// AdoptApp installs an existing extensible application as this host's
// application (it must live on the host's system).
func (h *Host) AdoptApp(a *core.App) { h.app = a }

// App returns the host's extensible application, creating and
// promoting one (NewApp + InitPL) on first use.
func (h *Host) App() (*core.App, error) {
	if h.app != nil {
		return h.app, nil
	}
	a, err := core.NewApp(h.Sys)
	if err != nil {
		return nil, err
	}
	if err := a.InitPL(); err != nil {
		return nil, err
	}
	h.app = a
	return a, nil
}

// ---------------------------------------------------------------- options

// LoadOptions parameterizes Backend.Load.
type LoadOptions struct {
	// Entry is the extension function symbol to bind. Required by
	// every backend except bpf.
	Entry string
	// BPF is the filter program for the bpf backend (which interprets
	// it instead of loading a native object).
	BPF bpf.Program
	// SharedSymbol names a module data symbol to use as the staging
	// area (Stager); SharedBytes instead allocates a page-rounded
	// shared area outside the module for user-level backends.
	SharedSymbol string
	SharedBytes  uint32
	// SegmentSize sizes the palladium-kernel extension segment
	// (0 = mechanism default).
	SegmentSize uint32
	// SFI configures the sfi backend's sandbox region; the zero value
	// selects a default 64 KB region.
	SFI sfi.Config
	// ReqBytes/RespBytes size the rpc backend's per-invocation
	// request and reply payloads (default 4 each: the argument word
	// and the result word).
	ReqBytes, RespBytes int
	// AsyncBound caps the WithAsync queue (0 = the kernel mechanism's
	// DefaultAsyncQueueBound).
	AsyncBound int
	// Verify runs the load-time static verifier (internal/verify) over
	// the object before it is placed under the mechanism: abstract
	// interpretation over the ISA against the backend's declared
	// segment layout. Objects with a definite violation are refused
	// with a ValidationReject fault carrying the structured
	// verify.Report; accepted objects are loaded with their proved
	// per-operand bounds annotated, which lets the tier-2 translator
	// elide the segment-limit re-validation for those accesses.
	// Backends without a native-code load (bpf, rpc) report through
	// the same verify.Report type but ignore the flag's gating (bpf
	// always validates).
	Verify bool
}

// WithVerify returns o with the static load-time verifier enabled —
// sugar for option-literal call sites:
//
//	ext, err := b.Load(obj, sandbox.WithVerify(sandbox.LoadOptions{Entry: "f"}))
func WithVerify(o LoadOptions) LoadOptions {
	o.Verify = true
	return o
}

// InvokeOption modifies one invocation.
type InvokeOption func(*InvokeConfig)

// InvokeConfig is the resolved option set (exported so adapters and
// tests can inspect it).
type InvokeConfig struct {
	Tx        bool
	Async     bool
	TimeLimit float64
}

// WithTx runs the invocation as a transaction: the whole machine is
// snapshotted before the call (the PR-3 copy-on-write snapshot), and
// a fault rolls every simulated metric — memory, clock, page tables,
// descriptor tables, kernel bookkeeping — back to the pre-call state.
// The returned *Fault has RolledBack set.
func WithTx() InvokeOption { return func(c *InvokeConfig) { c.Tx = true } }

// WithAsync queues the invocation instead of running it: the call
// returns immediately (result discarded, as with the paper's queued
// packet-filter work) and the request runs when the extension's queue
// is drained. A full queue refuses the request with a Backpressure
// fault rather than growing without bound.
func WithAsync() InvokeOption { return func(c *InvokeConfig) { c.Async = true } }

// WithTimeLimit overrides the per-invocation CPU-time limit, in
// simulated cycles. Backends without a native limit (direct, sfi) arm
// one for the duration of the call; the bpf cost model checks the
// limit after the run.
func WithTimeLimit(cyc float64) InvokeOption {
	return func(c *InvokeConfig) { c.TimeLimit = cyc }
}

// ---------------------------------------------------------------- registry

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Factory builds a backend attached to a host.
type Factory func(h *Host) (Backend, error)

// Register adds a backend under a unique name; the six built-in
// adapters self-register at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sandbox: backend %q registered twice", name))
	}
	registry[name] = f
}

// Open attaches the named backend to the host.
func Open(name string, h *Host) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sandbox: unknown backend %q (have %v)", name, Backends())
	}
	return f(h)
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
