package sandbox_test

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/sandbox"
)

// ExampleOpen loads one extension object under two isolation
// mechanisms by name and shows the unified fault taxonomy: the same
// out-of-bounds store is a page violation for a user-level extension
// and a segment violation for a kernel extension.
func ExampleOpen() {
	src := `
		.global probe
		.text
		probe:
			mov eax, [esp+4]
			cmp eax, 0
			jne oob
			mov eax, 42
			ret
		oob:
			mov ecx, 134217728    ; 0x08000000: outside every domain
			mov [ecx], eax
			ret
	`
	for _, backend := range []string{"palladium-user", "palladium-kernel"} {
		host, err := sandbox.NewHost()
		if err != nil {
			fmt.Println(err)
			return
		}
		if _, err := host.Sys.K.CreateProcess(); err != nil {
			fmt.Println(err)
			return
		}
		b, err := sandbox.Open(backend, host)
		if err != nil {
			fmt.Println(err)
			return
		}
		ext, err := b.Load(isa.MustAssemble("probe", src), sandbox.LoadOptions{Entry: "probe"})
		if err != nil {
			fmt.Println(err)
			return
		}
		v, err := ext.Invoke(0) // benign path
		if err != nil {
			fmt.Println(err)
			return
		}
		_, err = ext.Invoke(1) // out-of-bounds write
		var f *sandbox.Fault
		errors.As(err, &f)
		fmt.Printf("%s: benign=%d out-of-bounds=%v\n", b.Name(), v, f.Class)
	}
	// Output:
	// palladium-user: benign=42 out-of-bounds=page-violation
	// palladium-kernel: benign=42 out-of-bounds=segment-violation
}
