package sandbox

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sfi"
	"repro/internal/verify"
)

// This file binds the load-time static verifier (internal/verify) to
// the concrete protection domains the adapters create. Each layout
// builder states, in the verifier's vocabulary, exactly what the
// corresponding mechanism enforces at run time:
//
//	palladium-kernel  segment-relative [0, KernelExtStackTop) is the
//	                  scratch+stack area (RW); module text/data follow
//	                  at the loader's placement; int 0x81 reaches the
//	                  kernel service gate.
//	palladium-user,   no absolute regions beyond the module itself;
//	direct            the PPL-1 extension stack; int 0x80 reaches the
//	                  system-call gate.
//	sfi               the masked power-of-two data region (with the
//	                  classic 3-byte guard slack past the end: a word
//	                  store masked to the last region byte spills into
//	                  the guard, exactly the spill Wahbe et al. absorb
//	                  with guard pages).
//
// Annotating an object that is then loaded under a *different* layout
// would be unsound, so the gate verifies and annotates a private clone
// per load.

// verifyGate statically checks obj under lay when opts.Verify is set.
// Rejections return a ValidationReject *Fault carrying the structured
// report; acceptances return a private annotated clone (proved operand
// bounds written in) for the adapter to load, plus the report for
// Extension.VerifyReport.
func verifyGate(backend string, obj *isa.Object, opts LoadOptions, lay verify.Layout) (*isa.Object, *verify.Report, error) {
	if !opts.Verify {
		return obj, nil, nil
	}
	clone := obj.Clone()
	rep := verify.Check(clone, lay)
	if !rep.Accepted() {
		return nil, rep, &Fault{
			Class: ValidationReject, Backend: backend, Op: "load",
			Report: rep, cause: rep.Err(),
		}
	}
	rep.Annotate(clone)
	return clone, rep, nil
}

// verifyArgSpec models the argument the adapter will pass: a pointer
// into the staged shared area when one is configured, an opaque word
// otherwise. The size is what the mechanism actually backs — the data
// section remainder past a shared symbol, or the page-rounded shared
// allocation.
func verifyArgSpec(obj *isa.Object, opts LoadOptions) verify.ArgSpec {
	switch {
	case opts.SharedSymbol != "":
		sym := obj.Symbol(opts.SharedSymbol)
		if sym == nil || sym.Section == isa.SecText {
			return verify.ArgSpec{}
		}
		total := uint32(len(obj.Data)) + obj.BSSSize
		off := sym.Off
		if sym.Section == isa.SecBSS {
			off += uint32(len(obj.Data))
		}
		if off < total {
			return verify.ArgSpec{Pointer: true, Size: total - off, Perm: verify.PermRW}
		}
	case opts.SharedBytes > 0:
		n := (opts.SharedBytes + mem.PageMask) &^ uint32(mem.PageMask)
		return verify.ArgSpec{Pointer: true, Size: n, Perm: verify.PermRW}
	}
	return verify.ArgSpec{}
}

// userVerifyLayout is the protection domain of the user-level
// backends (palladium-user, direct): module-relative accesses only,
// the PPL-1 extension stack window, and the system-call vector.
func userVerifyLayout(backend string, obj *isa.Object, opts LoadOptions) verify.Layout {
	return verify.Layout{
		Backend: backend,
		// Entry: transfer stub's CALL pushed the return address, so
		// ESP = stack top - 8 with the argument word just above it.
		StackBelow:   core.UserExtStackBytes - 8,
		StackAbove:   8,
		Arg:          verifyArgSpec(obj, opts),
		AllowedInts:  []uint8{kernel.VecSyscall},
		AllowExterns: true,
	}
}

// kernelVerifyLayout is the protection domain of a palladium-kernel
// extension segment: the segment-relative scratch+stack area is
// addressable absolutely, the per-segment stack window applies, and
// int 0x81 reaches the kernel service gate.
func kernelVerifyLayout(obj *isa.Object, opts LoadOptions) verify.Layout {
	return verify.Layout{
		Backend: "palladium-kernel",
		Regions: []verify.Region{{
			Name: "segment scratch+stack",
			Lo:   0, Hi: core.KernelExtStackTop - 1,
			Perm: verify.PermRW,
		}},
		StackBelow: core.KernelExtStackTop - 8 - core.KernelExtStackBottom,
		StackAbove: 8,
		// The region above contains the extension stack itself, so the
		// verifier must treat absolute stores that can reach the stack
		// window as aliasing its tracked stack slots.
		StackAbs:      core.KernelExtStackTop - 8,
		StackAbsKnown: true,
		Arg:           verifyArgSpec(obj, opts),
		AllowedInts:   []uint8{kernel.VecKernelSvc},
		AllowExterns:  true,
	}
}

// sfiVerifyLayout is the protection domain of the rewritten SFI
// object: the masked data region (declared with the 3-byte guard
// slack the masking sequence can spill into) plus the user-level
// stack and system-call policy — SFI extensions run in the
// application at user level.
func sfiVerifyLayout(cfg sfi.Config, obj *isa.Object, opts LoadOptions) verify.Layout {
	lay := userVerifyLayout("sfi", obj, opts)
	lay.Regions = []verify.Region{{
		Name: "sfi region",
		Lo:   cfg.DataBase,
		// A 4-byte store masked to the region's last byte spills 3
		// bytes past DataBase+DataSize; the mapped region's guard
		// slack absorbs it (the masking sequence can produce no
		// address beyond this).
		Hi:   cfg.DataBase + cfg.DataSize + 2,
		Perm: verify.PermRW,
	}}
	return lay
}
