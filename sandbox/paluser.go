package sandbox

import (
	"repro/internal/core"
	"repro/internal/isa"
)

func init() {
	Register("palladium-user", func(h *Host) (Backend, error) {
		return &palUserBackend{h: h}, nil
	})
}

// palUserBackend is Palladium's user-level mechanism (Section 4.4):
// the extension is seg_dlopen'ed at PPL 1 into the promoted
// application's own address space and every invocation runs the full
// Figure-6 protected-call cycle (Prepare → lret → function → lcall →
// AppCallGate). Page-privilege checks wall the SPL-3 extension off
// from everything the application has not exposed; pointers need no
// swizzling because both share one linear range.
type palUserBackend struct{ h *Host }

// Name implements Backend.
func (b *palUserBackend) Name() string { return "palladium-user" }

// Load implements Backend.
func (b *palUserBackend) Load(obj *isa.Object, opts LoadOptions) (Extension, error) {
	if opts.Entry == "" {
		return nil, rejectf("palladium-user", "no entry symbol")
	}
	obj, rep, err := verifyGate("palladium-user", obj, opts, userVerifyLayout("palladium-user", obj, opts))
	if err != nil {
		return nil, err
	}
	a, err := b.h.App()
	if err != nil {
		return nil, classify("palladium-user", "load", err)
	}
	handle, err := a.SegDlopen(obj)
	if err != nil {
		return nil, classify("palladium-user", "load", err)
	}
	pf, err := a.SegDlsym(handle, opts.Entry)
	if err != nil {
		return nil, classify("palladium-user", "load", err)
	}
	e := &extBase{h: b.h, backend: "palladium-user", entry: opts.Entry, bound: opts.AsyncBound, report: rep}
	if err := bindUserShared(e, a, handle, opts); err != nil {
		return nil, err
	}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		return protectedCallLimited(b.h, pf, arg, cfg)
	}
	e.doRelease = func() error { return a.SegDlclose(handle) }
	return e, nil
}

// AdoptProtected wraps an existing protected-function handle as a
// palladium-user extension without re-running seg_dlopen/seg_dlsym;
// the invocation path is exactly ProtectedFunc.Call's.
func AdoptProtected(pf *core.ProtectedFunc) Extension {
	h := HostFor(pf.App.S)
	h.AdoptApp(pf.App)
	e := &extBase{h: h, backend: "palladium-user", entry: pf.Name}
	e.doInvoke = func(arg uint32, cfg *InvokeConfig) (uint32, error) {
		return protectedCallLimited(h, pf, arg, cfg)
	}
	return e
}

// protectedCallLimited is ProtectedFunc.Call with an optional
// override of the kernel's per-invocation time limit (the mechanism
// arms its own limit from Kernel.ExtTimeLimit; the option swaps the
// budget for this call only and charges nothing).
func protectedCallLimited(h *Host, pf *core.ProtectedFunc, arg uint32, cfg *InvokeConfig) (uint32, error) {
	k := h.Sys.K
	if cfg.TimeLimit > 0 {
		old := k.ExtTimeLimit
		k.ExtTimeLimit = cfg.TimeLimit
		defer func() { k.ExtTimeLimit = old }()
	}
	return pf.Call(arg)
}
