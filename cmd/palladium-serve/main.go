// Command palladium-serve is the HTTP front end of the reproduction: a
// daemon serving the paper's Table 3 workload over a fleet of
// simulated Palladium machines, with bounded admission control (queue
// full => HTTP 503 + Retry-After), queue-depth-driven autoscaling via
// clone-boot, and latency observability.
//
// Usage:
//
//	palladium-serve -addr 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/serve?model=libcgi-prot'
//	curl http://127.0.0.1:8080/metrics
//
// Endpoints:
//
//	/serve?model=M  serve one request under model M (static, cgi,
//	                fastcgi, libcgi, libcgi-prot; default -model)
//	/healthz        liveness
//	/metrics        Prometheus-style counters + latency quantiles
//	/debug/pprof/   net/http/pprof
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, finishes every admitted request, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
	fileSize := flag.Uint("file-size", 28, "served file size in bytes (Table 3 row)")
	workers := flag.Int("workers", 1, "initial fleet size")
	maxWorkers := flag.Int("max-workers", 0, "autoscaling cap (<= -workers disables autoscaling)")
	queue := flag.Int("queue", 0, "admission bound on in-flight requests (default 4*max workers)")
	scaleInterval := flag.Duration("scale-interval", 10*time.Millisecond, "autoscaler sampling period")
	scaleDepth := flag.Float64("scale-depth", 2, "scale up while queue depth exceeds this per worker")
	model := flag.String("model", "libcgi-prot", "default execution model when ?model= is absent")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "palladium-serve:", err)
		os.Exit(1)
	}

	s, err := serve.New(serve.Config{
		Addr:          *addr,
		FileSize:      uint32(*fileSize),
		Workers:       *workers,
		MaxWorkers:    *maxWorkers,
		Queue:         *queue,
		ScaleInterval: *scaleInterval,
		ScaleUpDepth:  *scaleDepth,
		DefaultModel:  *model,
	})
	if err != nil {
		fail(err)
	}
	if err := s.Start(); err != nil {
		fail(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Printf("palladium-serve: listening on %s (%d workers, max %d, queue %d, default model %s)\n",
		s.Addr(), s.Workers(), maxWorkersEffective(*workers, *maxWorkers), s.Pool().Bound(), *model)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("palladium-serve: shutting down (draining admitted requests)")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		fail(err)
	}
	c := s.CountersSnapshot()
	fmt.Printf("palladium-serve: done: admitted=%d completed=%d failed=%d rejected=%d scaleups=%d\n",
		c.Admitted, c.Completed, c.Failed, c.Rejected, c.ScaleUps)
	if c.Admitted != c.Completed+c.Failed {
		fail(fmt.Errorf("dropped %d admitted requests", c.Admitted-c.Completed-c.Failed))
	}
}

func maxWorkersEffective(workers, maxWorkers int) int {
	if maxWorkers < workers {
		return workers
	}
	return maxWorkers
}
