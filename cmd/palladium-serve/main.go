// Command palladium-serve is the HTTP front end of the reproduction: a
// daemon serving the paper's Table 3 workload over a fleet of
// simulated Palladium machines, with bounded admission control (queue
// full => HTTP 503 + Retry-After), queue-depth-driven autoscaling via
// clone-boot, and latency observability.
//
// Usage:
//
//	palladium-serve -addr 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/serve?model=libcgi-prot'
//	curl http://127.0.0.1:8080/metrics
//
// Endpoints:
//
//	/serve?model=M  serve one request under model M (static, cgi,
//	                fastcgi, libcgi, libcgi-prot; default -model)
//	/healthz        liveness
//	/metrics        Prometheus-style counters + latency quantiles
//	/debug/pprof/   net/http/pprof
//
// Ephemeral-clone serving and snapshot cold starts:
//
//	palladium-serve -save-template tmpl.pal   # boot, snapshot to disk, exit
//	palladium-serve -restore tmpl.pal         # cold-start from the snapshot
//	palladium-serve -clone -warm-clones 4     # serve every request on a fresh
//	                                          # clone from a warm pool, discarded
//	                                          # after the response
//	palladium-serve -scale-down-depth 0.5     # retire idle scaled-up workers
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, finishes every admitted request, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/webserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
	fileSize := flag.Uint("file-size", 28, "served file size in bytes (Table 3 row)")
	workers := flag.Int("workers", 1, "initial fleet size")
	maxWorkers := flag.Int("max-workers", 0, "autoscaling cap (<= -workers disables autoscaling)")
	queue := flag.Int("queue", 0, "admission bound on in-flight requests (default 4*max workers)")
	scaleInterval := flag.Duration("scale-interval", 10*time.Millisecond, "autoscaler sampling period")
	scaleDepth := flag.Float64("scale-depth", 2, "scale up while queue depth exceeds this per worker")
	scaleDownDepth := flag.Float64("scale-down-depth", 0, "retire idle workers above the boot size while queue depth stays below this per remaining worker (0 disables)")
	model := flag.String("model", "libcgi-prot", "default execution model when ?model= is absent")
	clone := flag.Bool("clone", false, "ephemeral-clone mode: serve every request on a fresh clone of the template, discarded after the response")
	warmClones := flag.Int("warm-clones", 2, "pre-forked warm clone pool depth for -clone")
	restore := flag.String("restore", "", "cold-start the template from this snapshot file instead of booting (see -save-template)")
	saveTemplate := flag.String("save-template", "", "boot a pristine template, write its snapshot to this file, and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "palladium-serve:", err)
		os.Exit(1)
	}

	if *saveTemplate != "" {
		srv, err := webserver.BootServer(uint32(*fileSize))
		if err != nil {
			fail(err)
		}
		img := srv.SaveBytes()
		if err := os.WriteFile(*saveTemplate, img, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("palladium-serve: wrote %d-byte template snapshot (%d-byte file) to %s\n",
			len(img), *fileSize, *saveTemplate)
		return
	}

	var restoreImage []byte
	if *restore != "" {
		img, err := os.ReadFile(*restore)
		if err != nil {
			fail(err)
		}
		restoreImage = img
	}

	s, err := serve.New(serve.Config{
		Addr:            *addr,
		FileSize:        uint32(*fileSize),
		Workers:         *workers,
		MaxWorkers:      *maxWorkers,
		Queue:           *queue,
		ScaleInterval:   *scaleInterval,
		ScaleUpDepth:    *scaleDepth,
		ScaleDownDepth:  *scaleDownDepth,
		ClonePerRequest: *clone,
		WarmClones:      *warmClones,
		RestoreImage:    restoreImage,
		DefaultModel:    *model,
	})
	if err != nil {
		fail(err)
	}
	if err := s.Start(); err != nil {
		fail(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Printf("palladium-serve: listening on %s (%d workers, max %d, queue %d, default model %s)\n",
		s.Addr(), s.Workers(), maxWorkersEffective(*workers, *maxWorkers), s.Pool().Bound(), *model)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("palladium-serve: shutting down (draining admitted requests)")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		fail(err)
	}
	c := s.CountersSnapshot()
	fmt.Printf("palladium-serve: done: admitted=%d completed=%d failed=%d rejected=%d scaleups=%d scaledowns=%d\n",
		c.Admitted, c.Completed, c.Failed, c.Rejected, c.ScaleUps, c.ScaleDowns)
	if cs, ok := s.CloneStats(); ok {
		fmt.Printf("palladium-serve: clones: forks=%d discards=%d cold_steals=%d\n",
			cs.Forks, cs.Discards, cs.ColdSteals)
	}
	if c.Admitted != c.Completed+c.Failed {
		fail(fmt.Errorf("dropped %d admitted requests", c.Admitted-c.Completed-c.Failed))
	}
}

func maxWorkersEffective(workers, maxWorkers int) int {
	if maxWorkers < workers {
		return workers
	}
	return maxWorkers
}
