// Command genbumplint runs the generation-bump lint (internal/lint)
// over package directories and exits nonzero on violations:
//
//	go run ./cmd/genbumplint ./internal/mmu
//
// Exempted functions (//lint:genbump-exempt <reason>) are printed as
// waivers but do not fail the run.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: genbumplint <package-dir> [...]")
		os.Exit(2)
	}
	violations := 0
	for _, dir := range dirs {
		findings, err := lint.CheckDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genbumplint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			if !f.Exempt {
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "genbumplint: %d violation(s)\n", violations)
		os.Exit(1)
	}
}
