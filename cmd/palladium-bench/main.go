// Command palladium-bench regenerates the paper's evaluation tables
// and figures on the simulated Palladium system and prints them in the
// paper's layout.
//
// Usage:
//
//	palladium-bench                 # everything
//	palladium-bench -table 1       # Table 1 only (1, 2 or 3)
//	palladium-bench -figure 7      # Figure 7 only
//	palladium-bench -micro         # Section 5.1 micro-measurements
//	palladium-bench -ablation      # design-choice ablations
//	palladium-bench -interp        # interpreter block-cache/TLB counters
//	palladium-bench -fleet         # concurrent machine-fleet scaling curve
//	palladium-bench -snapshot      # template-boot+clone vs serial fleet boots
//	palladium-bench -clones        # ephemeral-clone serving: clone tax vs shared
//	                               # machine, snapshot round-trip, frame dedup
//	                               # (BENCH_clone.json)
//	palladium-bench -matrix        # workload x backend matrix (BENCH_matrix.json)
//	palladium-bench -matrix -backend sfi,bpf   # restrict the matrix's backends
//	palladium-bench -verify        # static verifier: escape rejects, workload
//	                               # accepts, tier-2 check elision (BENCH_verify.json)
//	palladium-bench -serve-load    # HTTP serving-capacity sweep over in-process
//	                               # palladium-serve daemons (BENCH_serve.json)
//	palladium-bench -serve-load -serve-workers 1,2,4 -serve-conns 1,8,32 \
//	                -serve-duration 2s             # custom sweep grid
//	palladium-bench -table 3 -cpuprofile cpu.prof -memprofile mem.prof
//	                               # profile any run (std runtime/pprof files;
//	                               # inspect with `go tool pprof`)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/sandbox"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate only this figure (7)")
	micro := flag.Bool("micro", false, "regenerate only the section 5.1 micro-measurements")
	ablation := flag.Bool("ablation", false, "regenerate only the design ablations")
	interp := flag.Bool("interp", false, "report interpreter block-cache and TLB counters")
	fleetRun := flag.Bool("fleet", false, "run the Table 3 workload through a concurrent machine fleet")
	workers := flag.String("workers", "1,2,4,8", "comma-separated fleet worker counts for -fleet and -snapshot")
	fleetJSON := flag.String("fleet-json", "", "write the -fleet report to this JSON file")
	snapshotRun := flag.Bool("snapshot", false, "compare template-boot+clone against serial fleet boots")
	snapshotJSON := flag.String("snapshot-json", "BENCH_snapshot.json", "write the -snapshot report to this JSON file")
	clonesRun := flag.Bool("clones", false, "measure ephemeral-clone serving: clone tax, snapshot round-trip, frame dedup")
	clonesJSON := flag.String("clones-json", "BENCH_clone.json", "write the -clones report to this JSON file")
	dedupMachines := flag.Int("dedup-machines", 8, "resident machines restored from one image for the -clones dedup check")
	matrixRun := flag.Bool("matrix", false, "run both workloads under every sandbox backend")
	backend := flag.String("backend", "", "comma-separated sandbox backends for -matrix (default: all registered)")
	matrixJSON := flag.String("matrix-json", "BENCH_matrix.json", "write the -matrix report to this JSON file")
	verifyRun := flag.Bool("verify", false, "run the static verifier over escapes and workloads, then the elision benchmark")
	verifyJSON := flag.String("verify-json", "BENCH_verify.json", "write the -verify report to this JSON file")
	verifyRuns := flag.Int("verify-runs", 5, "host wall-clock median pool for -verify")
	serveLoad := flag.Bool("serve-load", false, "sweep HTTP serving capacity (connections x workers) against in-process palladium-serve daemons")
	serveWorkers := flag.String("serve-workers", "1,2,4", "comma-separated fleet sizes for -serve-load")
	serveConns := flag.String("serve-conns", "1,4,16", "comma-separated client connection counts for -serve-load")
	serveDuration := flag.Duration("serve-duration", time.Second, "load duration per -serve-load cell")
	serveRate := flag.Float64("serve-rate", 0, "open-loop arrival rate in req/s for -serve-load (0 = closed-loop saturation)")
	serveModel := flag.String("serve-model", "", "execution model for -serve-load requests (default: daemon default)")
	serveJSON := flag.String("serve-json", "BENCH_serve.json", "write the -serve-load report to this JSON file")
	requests := flag.Int("requests", 100, "requests per Table 3 cell")
	calls := flag.Int("calls", 1000, "protected calls for the -interp workload")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the selected runs) to this file")
	flag.Parse()

	all := *table == 0 && *figure == 0 && !*micro && !*ablation && !*interp && !*fleetRun && !*snapshotRun && !*clonesRun && !*matrixRun && !*verifyRun && !*serveLoad
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "palladium-bench:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "palladium-bench:", err)
			}
			f.Close()
		}()
	}

	if all || *table == 1 {
		rows, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		experiments.RenderTable1(os.Stdout, rows)
		fmt.Println()
	}
	if all || *table == 2 {
		rows, err := experiments.Table2([]int{32, 64, 128, 256})
		if err != nil {
			fail(err)
		}
		experiments.RenderTable2(os.Stdout, rows)
		fmt.Println()
	}
	if all || *table == 3 {
		rows, err := experiments.Table3(experiments.Table3Sizes(), *requests)
		if err != nil {
			fail(err)
		}
		experiments.RenderTable3(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 7 {
		pts, err := experiments.Figure7(4)
		if err != nil {
			fail(err)
		}
		experiments.RenderFigure7(os.Stdout, pts)
		fmt.Println()
	}
	if all || *micro {
		m, err := experiments.MeasureMicro()
		if err != nil {
			fail(err)
		}
		experiments.RenderMicro(os.Stdout, m)
		fmt.Println()
	}
	if all || *ablation {
		sfiPts, err := experiments.AblationSFI()
		if err != nil {
			fail(err)
		}
		cc, err := experiments.AblationCrossings()
		if err != nil {
			fail(err)
		}
		experiments.RenderAblations(os.Stdout, sfiPts, cc)
	}
	if *interp {
		st, err := experiments.MeasureInterp(*calls)
		if err != nil {
			fail(err)
		}
		experiments.RenderInterp(os.Stdout, st, *calls)
	}
	if *fleetRun {
		counts, err := parseWorkers(*workers)
		if err != nil {
			fail(err)
		}
		rep, err := experiments.MeasureFleet(28, *requests, counts)
		if err != nil {
			fail(err)
		}
		experiments.RenderFleet(os.Stdout, rep)
		if *fleetJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*fleetJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *snapshotRun {
		counts, err := parseWorkers(*workers)
		if err != nil {
			fail(err)
		}
		rep, err := experiments.MeasureSnapshot(28, *requests, counts)
		if err != nil {
			fail(err)
		}
		experiments.RenderSnapshot(os.Stdout, rep)
		if *snapshotJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*snapshotJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *clonesRun {
		rep, err := experiments.MeasureClones(experiments.Table3Sizes(), *requests, *dedupMachines)
		if err != nil {
			fail(err)
		}
		experiments.RenderClones(os.Stdout, rep)
		if *clonesJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*clonesJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *matrixRun {
		names, err := parseBackends(*backend)
		if err != nil {
			fail(err)
		}
		rep, err := experiments.MeasureMatrix(*requests, names)
		if err != nil {
			fail(err)
		}
		experiments.RenderMatrix(os.Stdout, rep)
		if *matrixJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*matrixJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *serveLoad {
		workerCounts, err := parseWorkers(*serveWorkers)
		if err != nil {
			fail(err)
		}
		connCounts, err := parseWorkers(*serveConns)
		if err != nil {
			fail(err)
		}
		rep, err := serve.Sweep(serve.SweepConfig{
			Model:    *serveModel,
			Workers:  workerCounts,
			Conns:    connCounts,
			Rate:     *serveRate,
			Duration: *serveDuration,
		})
		if err != nil {
			fail(err)
		}
		serve.RenderReport(os.Stdout, rep)
		if *serveJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*serveJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *verifyRun {
		rep, err := experiments.MeasureVerify(*requests, *verifyRuns)
		if err != nil {
			fail(err)
		}
		experiments.RenderVerify(os.Stdout, rep)
		if *verifyJSON != "" {
			b, err := json.MarshalIndent(rep, "", " ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*verifyJSON, append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
}

// parseBackends validates a comma-separated backend list against the
// sandbox registry; empty selects every registered backend.
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, n := range sandbox.Backends() {
		known[n] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		n := strings.TrimSpace(f)
		if !known[n] {
			return nil, fmt.Errorf("unknown backend %q (have %s)", n, strings.Join(sandbox.Backends(), ", "))
		}
		out = append(out, n)
	}
	return out, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -workers value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
