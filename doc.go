// Package repro is a reproduction of "Integrating Segmentation and
// Paging Protection for Safe, Efficient and Transparent Software
// Extensions" (Chiueh, Venkitachalam, Pradhan; SOSP '99) — the
// Palladium intra-address-space protection system — as a pure-Go
// simulation of the x86 protection hardware it builds on.
//
// The library lives under internal/: internal/core is Palladium
// itself, and the remaining packages are the substrates (cycle model,
// MMU, CPU, kernel, loader) and the baselines/applications used by the
// evaluation. The public repro/sandbox package is the unified
// Backend/Extension programming model over every isolation mechanism
// the paper compares. See DESIGN.md for the system inventory,
// EXPERIMENTS.md for paper-vs-measured results, and bench_test.go for
// the benchmark per table and figure.
package repro
