package repro

// One benchmark per table and figure of the paper's evaluation
// (Section 5), plus the Section 5.1 micro-measurements and the design
// ablations. Results are simulated CPU cycles (or microseconds at the
// 200 MHz testbed clock), reported as custom metrics; wall-clock ns/op
// reflects only the simulator's own speed.

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkTable1ProtectedCall regenerates Table 1: the cycle
// decomposition of one protected (inter-domain) procedure call.
func BenchmarkTable1ProtectedCall(b *testing.B) {
	var total, setup, call, ret, restore float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		setup, call, ret, restore = rows[0].Inter, rows[1].Inter, rows[2].Inter, rows[3].Inter
		total = rows[4].Inter
	}
	b.ReportMetric(total, "sim-cycles/call")
	b.ReportMetric(setup, "setup-cycles")
	b.ReportMetric(call, "call-cycles")
	b.ReportMetric(ret, "return-cycles")
	b.ReportMetric(restore, "restore-cycles")
}

// BenchmarkTable1IntraCall regenerates Table 1's intra-domain column.
func BenchmarkTable1IntraCall(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		total = rows[4].Intra
	}
	b.ReportMetric(total, "sim-cycles/call")
}

// BenchmarkTable1HardwareModel regenerates the theoretical column.
func BenchmarkTable1HardwareModel(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		total = rows[4].Hardware
	}
	b.ReportMetric(total, "sim-cycles/call")
}

// BenchmarkTable2StringReverse regenerates Table 2 for each string
// size: unprotected call vs Palladium protected call vs Linux RPC.
func BenchmarkTable2StringReverse(b *testing.B) {
	for _, size := range []int{32, 64, 128, 256} {
		b.Run(byteLabel(size), func(b *testing.B) {
			var row experiments.Table2Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table2([]int{size})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.Unprotected, "unprotected-us")
			b.ReportMetric(row.Palladium, "palladium-us")
			b.ReportMetric(row.RPC, "rpc-us")
		})
	}
}

// BenchmarkTable3Throughput regenerates Table 3 for each file size:
// requests/second under the five execution models.
func BenchmarkTable3Throughput(b *testing.B) {
	for _, size := range []uint32{28, 1024, 10 * 1024, 100 * 1024} {
		b.Run(byteLabel(int(size)), func(b *testing.B) {
			var row experiments.Table3Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table3([]uint32{size}, 20)
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.CGI, "cgi-req/s")
			b.ReportMetric(row.FastCGI, "fastcgi-req/s")
			b.ReportMetric(row.LibCGIProt, "libcgi-prot-req/s")
			b.ReportMetric(row.LibCGIUnprot, "libcgi-unprot-req/s")
			b.ReportMetric(row.WebServer, "static-req/s")
		})
	}
}

// BenchmarkFigure7PacketFilter regenerates Figure 7: compiled
// (Palladium kernel extension) vs interpreted (BPF) filter cost as the
// number of all-true conjunction terms grows.
func BenchmarkFigure7PacketFilter(b *testing.B) {
	for terms := 0; terms <= 4; terms++ {
		b.Run(termLabel(terms), func(b *testing.B) {
			var pt experiments.Figure7Point
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Figure7(terms)
				if err != nil {
					b.Fatal(err)
				}
				pt = pts[terms]
			}
			b.ReportMetric(pt.BPF, "bpf-cycles")
			b.ReportMetric(pt.Palladium, "palladium-cycles")
		})
	}
}

// BenchmarkFleetTable3 measures the wall-clock cost of serving one
// Table 3 cell through a 4-worker clone-booted fleet (boot + serve +
// drain); the simulated metrics it produces are pinned elsewhere —
// this tracks how fast the simulator itself turns the crank.
func BenchmarkFleetTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MeasureFleet(28, 40, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroMeasurements regenerates the Section 5.1 one-off
// numbers: SIGSEGV delivery, kernel #GP processing, dlopen vs
// seg_dlopen, segment register load, L4 comparison.
func BenchmarkMicroMeasurements(b *testing.B) {
	var m experiments.Micro
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiments.MeasureMicro()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.SIGSEGVDeliveryCycles, "sigsegv-cycles")
	b.ReportMetric(m.KernelGPFaultCycles, "gp-cycles")
	b.ReportMetric(m.DlopenMicros, "dlopen-us")
	b.ReportMetric(m.SegDlopenMicros, "seg-dlopen-us")
	b.ReportMetric(m.SegRegLoadCycles, "segreg-cycles")
	b.ReportMetric(m.L4RoundTripCycles, "l4-cycles")
}

// BenchmarkAblationSFIOverhead measures the SFI baseline's overhead at
// increasing memory-operation density (Section 2.1's 1%-220% band).
func BenchmarkAblationSFIOverhead(b *testing.B) {
	var pts []experiments.SFIPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.AblationSFI()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].OverheadPct, "sparse-overhead-pct")
	b.ReportMetric(pts[len(pts)-1].OverheadPct, "dense-overhead-pct")
}

// BenchmarkAblationCrossings compares domain-crossing strategies:
// Palladium's two crossings, L4-style four crossings, and the rejected
// TSS-update-via-syscall variant (Section 4.5.1).
func BenchmarkAblationCrossings(b *testing.B) {
	var cc experiments.CrossingsComparison
	var err error
	for i := 0; i < b.N; i++ {
		cc, err = experiments.AblationCrossings()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cc.Palladium2Crossings, "palladium-cycles")
	b.ReportMetric(cc.L4Style4Crossings, "l4-cycles")
	b.ReportMetric(cc.TSSSyscallVariant, "tss-syscall-cycles")
}

func byteLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return itoa(n/1024) + "KB"
	}
	return itoa(n) + "B"
}

func termLabel(n int) string { return itoa(n) + "terms" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
